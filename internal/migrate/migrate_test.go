package migrate

import (
	"bytes"
	"testing"

	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// gang builds a hypervisor with VMs whose page contents come from the
// byte lists (0 leaves the page untouched/unbacked).
func gang(t *testing.T, frames int, contents ...[]byte) (*vm.Hypervisor, []int) {
	t.Helper()
	h := vm.NewHypervisor(uint64(frames) * mem.PageSize)
	var ids []int
	for _, cs := range contents {
		v := h.NewVM(uint64(len(cs)) * mem.PageSize)
		v.Madvise(0, len(cs), true)
		for g, c := range cs {
			if c != 0 {
				if _, err := v.Write(vm.GFN(g), 0, bytes.Repeat([]byte{c}, mem.PageSize)); err != nil {
					t.Fatal(err)
				}
			}
		}
		ids = append(ids, v.ID)
	}
	return h, ids
}

func TestPlanDeduplicatesOnTheWire(t *testing.T) {
	h, ids := gang(t, 64,
		[]byte{1, 2, 3},
		[]byte{1, 2, 4}, // 1 and 2 duplicate VM0's
	)
	p := PlanGang(h, ids)
	if p.TotalPages != 6 {
		t.Fatalf("TotalPages = %d", p.TotalPages)
	}
	if p.DistinctPages != 4 {
		t.Fatalf("DistinctPages = %d, want 4 (contents 1,2,3,4)", p.DistinctPages)
	}
	if p.WireDeduped != 2 {
		t.Fatalf("WireDeduped = %d, want 2", p.WireDeduped)
	}
	if p.AlreadyShared != 0 {
		t.Fatalf("AlreadyShared = %d (nothing is merged yet)", p.AlreadyShared)
	}
	if r := p.Reduction(); r < 0.32 || r > 0.35 {
		t.Fatalf("reduction = %.3f, want 1/3", r)
	}
}

func TestPlanUsesExistingSharing(t *testing.T) {
	h, ids := gang(t, 64, []byte{7, 8}, []byte{7, 9})
	// Merge the duplicates first (the dedup engine has been running).
	s := ksm.NewScanner(ksm.NewAlgorithm(h, ksm.JHasher{}), ksm.DefaultCosts())
	s.RunToSteadyState(6)
	p := PlanGang(h, ids)
	if p.AlreadyShared != 1 {
		t.Fatalf("AlreadyShared = %d, want 1 (merged pair)", p.AlreadyShared)
	}
	if p.DistinctPages != 3 {
		t.Fatalf("DistinctPages = %d, want 3", p.DistinctPages)
	}
}

func TestMigrationRoundTripPreservesContentsAndSharing(t *testing.T) {
	src, ids := gang(t, 128,
		[]byte{1, 2, 3, 1},
		[]byte{1, 2, 5, 6},
		[]byte{2, 2, 3, 7},
	)
	// Merge some of it first so both sharing paths are exercised.
	s := ksm.NewScanner(ksm.NewAlgorithm(src, ksm.JHasher{}), ksm.DefaultCosts())
	s.RunToSteadyState(6)
	srcFrames := src.Phys.AllocatedFrames()

	p := PlanGang(src, ids)
	var wire bytes.Buffer
	if err := p.Stream(&wire); err != nil {
		t.Fatal(err)
	}
	// Wire size ≈ distinct pages + small metadata.
	if wire.Len() < p.DistinctPages*mem.PageSize {
		t.Fatal("stream smaller than its page payloads")
	}
	if wire.Len() > p.DistinctPages*mem.PageSize+4096 {
		t.Fatalf("stream metadata unexpectedly large: %d bytes", wire.Len())
	}

	dest := vm.NewHypervisor(256 * mem.PageSize)
	vms, err := Receive(&wire, dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 3 {
		t.Fatalf("received %d VMs", len(vms))
	}
	// Contents identical.
	want := [][]byte{
		{1, 2, 3, 1},
		{1, 2, 5, 6},
		{2, 2, 3, 7},
	}
	buf := make([]byte, 2)
	for i, v := range vms {
		for g, c := range want[i] {
			if err := v.Read(vm.GFN(g), 100, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != c || buf[1] != c {
				t.Fatalf("vm%d page %d reads %v, want %d", i, g, buf, c)
			}
		}
	}
	// Sharing preserved: the destination uses exactly DistinctPages frames,
	// which matches the (fully deduplicated) source.
	if got := dest.Phys.AllocatedFrames(); got != p.DistinctPages {
		t.Fatalf("dest frames = %d, want %d", got, p.DistinctPages)
	}
	// Note: on the source, KSM had already found every duplicate, so the
	// frame counts agree end to end.
	if srcFrames != p.DistinctPages {
		t.Fatalf("source frames %d != distinct %d (KSM should have converged)",
			srcFrames, p.DistinctPages)
	}
	// CoW still works on the destination: a write breaks sharing privately.
	if _, err := vms[0].Write(0, 0, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	vms[1].Read(0, 0, buf[:1])
	if buf[0] != 1 {
		t.Fatal("destination sharing was not CoW")
	}
}

func TestMigrationUnbackedPagesStayUnbacked(t *testing.T) {
	h := vm.NewHypervisor(64 * mem.PageSize)
	v := h.NewVM(4 * mem.PageSize)
	v.Madvise(0, 4, true)
	v.Write(1, 0, bytes.Repeat([]byte{3}, mem.PageSize)) // only page 1 backed
	p := PlanGang(h, []int{v.ID})
	if p.TotalPages != 1 || p.DistinctPages != 1 {
		t.Fatalf("plan %+v", p)
	}
	var wire bytes.Buffer
	if err := p.Stream(&wire); err != nil {
		t.Fatal(err)
	}
	dest := vm.NewHypervisor(64 * mem.PageSize)
	vms, err := Receive(&wire, dest)
	if err != nil {
		t.Fatal(err)
	}
	if vms[0].Present(0) || vms[0].Present(2) || vms[0].Present(3) {
		t.Fatal("unbacked pages materialized on the destination")
	}
	if !vms[0].Present(1) {
		t.Fatal("backed page missing")
	}
}

func TestReceiveRejectsGarbage(t *testing.T) {
	dest := vm.NewHypervisor(16 * mem.PageSize)
	if _, err := Receive(bytes.NewReader([]byte{1, 2, 3}), dest); err == nil {
		t.Fatal("truncated header accepted")
	}
	bad := bytes.NewBuffer(nil)
	bad.Write([]byte{0xEF, 0xBE, 0xAD, 0xDE, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := Receive(bad, dest); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestGangMigrationOnTailbenchImage(t *testing.T) {
	// End to end on a realistic deployment: the wire reduction approaches
	// the deployment's duplicate fraction even when the dedup engine never
	// ran on the source.
	app := *tailbench.ProfileByName("silo")
	app.PagesPerVM = 150
	img, err := tailbench.BuildImage(app, 6, 6*150*2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 6)
	for i := range ids {
		ids[i] = i
	}
	p := PlanGang(img.HV, ids)
	if p.Reduction() < 0.35 {
		t.Fatalf("wire reduction %.2f, want roughly the dup+zero fraction", p.Reduction())
	}
	var wire bytes.Buffer
	if err := p.Stream(&wire); err != nil {
		t.Fatal(err)
	}
	dest := vm.NewHypervisor(uint64(6*150*2) * mem.PageSize)
	vms, err := Receive(&wire, dest)
	if err != nil {
		t.Fatal(err)
	}
	// Destination arrives pre-deduplicated.
	if dest.Phys.AllocatedFrames() != p.DistinctPages {
		t.Fatalf("dest frames %d != distinct %d", dest.Phys.AllocatedFrames(), p.DistinctPages)
	}
	// Spot-check byte equality of a few pages.
	for _, id := range []vm.PageID{{VM: 0, GFN: 0}, {VM: 3, GFN: 50}, {VM: 5, GFN: 149}} {
		srcPage, err := img.HV.VM(id.VM).Page(id.GFN)
		if err != nil {
			t.Fatal(err)
		}
		dstPage, err := vms[id.VM].Page(id.GFN)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(srcPage, dstPage) {
			t.Fatalf("page %v differs after migration", id)
		}
	}
}
