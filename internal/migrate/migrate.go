// Package migrate implements deduplication-aware gang migration of
// co-located VMs (Deshpande et al., HPDC 2011), which the paper's related
// work (§7.2) highlights as another consumer of page-sharing state: when a
// group of VMs moves between hosts together, each distinct page crosses
// the wire once — pages already merged by the deduplication engine are
// free wins, and not-yet-merged duplicates are deduplicated on the fly.
//
// The stream format is self-contained: a header, the distinct page
// contents, and per-VM mapping tables referencing them. Receiving rebuilds
// the VMs on the destination hypervisor with the sharing structure intact
// (shared pages arrive shared — the destination does not need to re-run
// its deduplication engine to regain the memory savings).
package migrate

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/esx"
	"repro/internal/mem"
	"repro/internal/vm"
)

const magic = 0x50464d31 // "PFM1"

// Plan is the result of analyzing a gang of VMs for migration.
type Plan struct {
	hv  *vm.Hypervisor
	vms []int

	// distinct frames to send, in stream order.
	frames []mem.PFN
	// frameIndex maps a source frame to its position in frames.
	frameIndex map[mem.PFN]int
	// mappings, per VM in vms order: gfn -> frame position (-1: unbacked).
	mappings [][]int32

	TotalPages     int // resident guest pages across the gang
	DistinctPages  int // pages actually transferred
	AlreadyShared  int // avoided via existing merged (CoW) frames
	WireDeduped    int // avoided via on-the-fly content dedup
	BytesNaive     uint64
	BytesDeduped   uint64
	SharedPairings int
}

// PlanGang analyzes the VMs (by ID) for migration, deduplicating by frame
// (existing sharing) and then by content hash (wire dedup).
func PlanGang(hv *vm.Hypervisor, vmIDs []int) *Plan {
	p := &Plan{hv: hv, vms: vmIDs, frameIndex: make(map[mem.PFN]int)}
	byContent := make(map[uint64][]int) // hash -> candidate positions

	for _, vid := range vmIDs {
		v := hv.VM(vid)
		mapping := make([]int32, v.Pages())
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			pfn, ok := v.Resolve(g)
			if !ok {
				mapping[g] = -1
				continue
			}
			p.TotalPages++
			p.BytesNaive += mem.PageSize

			// Existing sharing: the frame is already in the stream.
			if pos, seen := p.frameIndex[pfn]; seen {
				mapping[g] = int32(pos)
				p.AlreadyShared++
				continue
			}
			// Wire dedup: identical content under a different frame.
			page := hv.Phys.Page(pfn)
			h := esx.PageHash64(page)
			matched := -1
			for _, pos := range byContent[h] {
				if same, _ := hv.Phys.SamePage(pfn, p.frames[pos]); same {
					matched = pos
					break
				}
			}
			if matched >= 0 {
				mapping[g] = int32(matched)
				p.frameIndex[pfn] = matched
				p.WireDeduped++
				continue
			}
			pos := len(p.frames)
			p.frames = append(p.frames, pfn)
			p.frameIndex[pfn] = pos
			byContent[h] = append(byContent[h], pos)
			mapping[g] = int32(pos)
		}
		p.mappings = append(p.mappings, mapping)
	}
	p.DistinctPages = len(p.frames)
	p.BytesDeduped = uint64(p.DistinctPages) * mem.PageSize
	return p
}

// Reduction reports the fraction of wire bytes saved versus naive copy.
func (p *Plan) Reduction() float64 {
	if p.BytesNaive == 0 {
		return 0
	}
	return 1 - float64(p.BytesDeduped)/float64(p.BytesNaive)
}

// Stream serializes the gang: header, distinct pages, mapping tables.
// (Metadata overhead — 4 bytes per guest page — is negligible next to the
// page payloads and is not counted in BytesDeduped.)
func (p *Plan) Stream(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{magic, uint32(len(p.vms)), uint32(len(p.frames))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, pfn := range p.frames {
		if _, err := bw.Write(p.hv.Phys.Page(pfn)); err != nil {
			return err
		}
	}
	for i := range p.vms {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.mappings[i]))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.mappings[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Receive rebuilds the gang on the destination hypervisor, preserving the
// sharing structure: every mapping that referenced one stream page maps to
// one (CoW-shared) frame on the destination.
func Receive(r io.Reader, dest *vm.Hypervisor) ([]*vm.VM, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("migrate: header: %w", err)
	}
	if hdr[0] != magic {
		return nil, fmt.Errorf("migrate: bad magic %#x", hdr[0])
	}
	numVMs, numFrames := int(hdr[1]), int(hdr[2])

	pages := make([][]byte, numFrames)
	for i := range pages {
		pages[i] = make([]byte, mem.PageSize)
		if _, err := io.ReadFull(br, pages[i]); err != nil {
			return nil, fmt.Errorf("migrate: page %d: %w", i, err)
		}
	}

	// Materialize each distinct page lazily as VMs reference it; the first
	// referencing guest page owns the frame, later ones merge onto it.
	framePFN := make([]mem.PFN, numFrames)
	frameSet := make([]bool, numFrames)

	var vms []*vm.VM
	for i := 0; i < numVMs; i++ {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("migrate: vm %d mapping size: %w", i, err)
		}
		mapping := make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, &mapping); err != nil {
			return nil, fmt.Errorf("migrate: vm %d mapping: %w", i, err)
		}
		v := dest.NewVM(uint64(n) * mem.PageSize)
		v.Madvise(0, int(n), true)
		for g, pos := range mapping {
			if pos < 0 {
				continue
			}
			if int(pos) >= numFrames {
				return nil, fmt.Errorf("migrate: vm %d gfn %d references page %d/%d", i, g, pos, numFrames)
			}
			if !frameSet[pos] {
				if _, err := v.Write(vm.GFN(g), 0, pages[pos]); err != nil {
					return nil, fmt.Errorf("migrate: materialize page %d: %w", pos, err)
				}
				pfn, _ := v.Resolve(vm.GFN(g))
				framePFN[pos] = pfn
				frameSet[pos] = true
				continue
			}
			// Map this guest page onto the existing frame (shared, CoW):
			// materialize the content, then merge — the transient frame is
			// freed by the merge, leaving one shared frame.
			if _, err := v.Write(vm.GFN(g), 0, pages[pos]); err != nil {
				return nil, err
			}
			if _, err := dest.Merge(vm.PageID{VM: v.ID, GFN: vm.GFN(g)}, framePFN[pos]); err != nil {
				// Contents must match by construction; a mismatch is a bug.
				return nil, fmt.Errorf("migrate: restoring sharing for page %d: %w", pos, err)
			}
		}
		vms = append(vms, v)
	}
	return vms, nil
}
