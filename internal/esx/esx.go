// Package esx implements a second same-page merging algorithm — the
// hash-indexed scheme of VMware's ESX Server (Waldspurger, OSDI 2002),
// which the paper discusses in §7.2 — both in software and on top of the
// PageForge hardware. It exists to demonstrate §4.2's generality claim:
// the Scan Table is not tied to KSM's trees; with every entry's Less and
// More pointing at the next entry, the hardware walks an arbitrary *list*
// of candidate pages, which is exactly what a hash bucket is.
//
// The algorithm: each scanned page is hashed over its full contents.
//   - If the hash matches a *shared* (already-merged, CoW) frame, the page
//     is compared exhaustively against the bucket and merged on a match.
//   - Otherwise the hash is remembered as a *hint*. When a later page hits
//     the same hint, the hint page is re-hashed (it is not write-protected
//     and may have changed); if it still matches, the two pages are
//     compared and merged into a new shared frame.
//
// Unlike KSM there are no per-pass trees to rebuild; the price is a full-
// page hash per scanned page instead of KSM's 1KB checksum.
package esx

import (
	"repro/internal/hash"
	"repro/internal/mem"
	"repro/internal/vm"
)

// PageHash64 hashes a full page to 64 bits (two jhash2 passes with
// independent seeds, mirroring ESX's 64-bit frame hashes).
func PageHash64(page []byte) uint64 {
	lo := hash.JHash2Bytes(page, 0x9747b28c)
	hi := hash.JHash2Bytes(page, 0x7feb352d)
	return uint64(hi)<<32 | uint64(lo)
}

// Stats counts algorithm activity.
type Stats struct {
	PagesScanned   uint64
	HintInserts    uint64 // first sighting of a content hash
	HintUpdates    uint64 // hint page had changed; hash re-recorded
	HintPromotions uint64 // hint matched: two pages merged into a shared frame
	SharedMerges   uint64 // page merged into an existing shared frame
	FailedMerges   uint64 // hash collision or racing write: full compare said no
	Comparisons    uint64
	BytesCompared  uint64
	BytesHashed    uint64
}

// hint tracks an unshared page whose hash has been seen once.
type hint struct {
	id   vm.PageID
	pfn  mem.PFN
	hash uint64
}

// Comparer abstracts who performs the exhaustive comparisons: the software
// scanner or the PageForge hardware in list mode.
type Comparer interface {
	// SamePage exhaustively compares the candidate frame against each frame
	// in others (in order), returning the index of the first identical
	// frame or -1, plus the bytes examined.
	SamePage(cand mem.PFN, others []mem.PFN) (match int, bytes int)
}

// Table is the ESX-style hint/shared hash table over a hypervisor.
type Table struct {
	HV  *vm.Hypervisor
	Cmp Comparer

	hints  map[uint64]hint
	shared map[uint64][]mem.PFN // buckets: hash collisions are possible
	order  []vm.PageID
	curs   int

	Stats Stats
}

// New builds the algorithm state; cmp decides the comparison engine.
func New(hv *vm.Hypervisor, cmp Comparer) *Table {
	t := &Table{HV: hv, Cmp: cmp, hints: make(map[uint64]hint), shared: make(map[uint64][]mem.PFN)}
	t.RefreshOrder()
	return t
}

// RefreshOrder rebuilds the scan order over mergeable pages.
func (t *Table) RefreshOrder() {
	t.order = t.order[:0]
	for i := 0; i < t.HV.NumVMs(); i++ {
		v := t.HV.VM(i)
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			if v.Mergeable(g) {
				t.order = append(t.order, vm.PageID{VM: i, GFN: g})
			}
		}
	}
	if t.curs >= len(t.order) {
		t.curs = 0
	}
}

// MergeablePages reports the scan-order length.
func (t *Table) MergeablePages() int { return len(t.order) }

// SharedFrames reports how many distinct shared frames the table tracks.
func (t *Table) SharedFrames() int {
	n := 0
	for _, bucket := range t.shared {
		n += len(bucket)
	}
	return n
}

// ScanOne processes the next page in the scan order.
func (t *Table) ScanOne() (merged bool, ok bool) {
	if len(t.order) == 0 {
		return false, false
	}
	id := t.order[t.curs]
	t.curs = (t.curs + 1) % len(t.order)
	t.Stats.PagesScanned++

	pfn, present := t.HV.Resolve(id)
	if !present {
		return false, true
	}
	frame := t.HV.Phys.Get(pfn)
	if frame.CoW() && frame.Refs() > 1 {
		return false, true // already a shared frame
	}

	h := PageHash64(t.HV.Phys.Page(pfn))
	t.Stats.BytesHashed += mem.PageSize

	// 1. Try the shared frames with this hash.
	if bucket := t.liveBucket(h); len(bucket) > 0 {
		match, bytes := t.Cmp.SamePage(pfn, bucket)
		t.Stats.Comparisons += uint64(len(bucket))
		t.Stats.BytesCompared += uint64(bytes)
		if match >= 0 {
			if _, err := t.HV.Merge(id, bucket[match]); err == nil {
				t.Stats.SharedMerges++
				return true, true
			}
			t.Stats.FailedMerges++
			return false, true
		}
		// Full collision: same 64-bit hash, different contents. Fall
		// through to the hint path.
	}

	// 2. Try the hint.
	if hn, okh := t.hints[h]; okh && hn.id != id {
		if hpfn, live := t.HV.Resolve(hn.id); live && hpfn == hn.pfn {
			// Re-hash the hint page: it is not write-protected.
			t.Stats.BytesHashed += mem.PageSize
			if PageHash64(t.HV.Phys.Page(hpfn)) == h {
				match, bytes := t.Cmp.SamePage(pfn, []mem.PFN{hpfn})
				t.Stats.Comparisons++
				t.Stats.BytesCompared += uint64(bytes)
				if match == 0 {
					if _, err := t.HV.Merge(id, hpfn); err == nil {
						// The hint's frame is now a shared frame.
						t.HV.Phys.IncRef(hpfn) // table's own hold
						t.shared[h] = append(t.shared[h], hpfn)
						delete(t.hints, h)
						t.Stats.HintPromotions++
						return true, true
					}
					t.Stats.FailedMerges++
					return false, true
				}
				// 64-bit collision with different data: keep the old hint.
				t.Stats.FailedMerges++
				return false, true
			}
			// Hint page changed since recorded: this candidate becomes the
			// new hint for h.
			t.hints[h] = hint{id: id, pfn: pfn, hash: h}
			t.Stats.HintUpdates++
			return false, true
		}
		// Hint page vanished or was remapped; replace it.
		t.hints[h] = hint{id: id, pfn: pfn, hash: h}
		t.Stats.HintUpdates++
		return false, true
	}

	// 3. First sighting.
	t.hints[h] = hint{id: id, pfn: pfn, hash: h}
	t.Stats.HintInserts++
	return false, true
}

// liveBucket prunes shared frames that lost all guest mappers (dropping
// the table's hold) and returns the live ones.
func (t *Table) liveBucket(h uint64) []mem.PFN {
	bucket := t.shared[h]
	live := bucket[:0]
	for _, pfn := range bucket {
		if len(t.HV.Mappers(pfn)) > 0 {
			live = append(live, pfn)
		} else {
			t.HV.Phys.DecRef(pfn)
		}
	}
	if len(live) == 0 {
		delete(t.shared, h)
		return nil
	}
	t.shared[h] = live
	return live
}

// PruneShared drops shared frames that no guest page maps anymore,
// releasing the table's hold on them. ScanOne prunes lazily on bucket
// lookups; this full sweep runs at pass boundaries so frames whose content
// never recurs are also reclaimed.
func (t *Table) PruneShared() {
	for h := range t.shared {
		t.liveBucket(h)
	}
}

// RunToSteadyState performs full scans until one completes with no merge
// (after the second pass), returning the number of passes. Dead shared
// frames are pruned at each pass boundary.
func (t *Table) RunToSteadyState(maxPasses int) int {
	for p := 0; p < maxPasses; p++ {
		merges := t.Stats.SharedMerges + t.Stats.HintPromotions
		n := t.MergeablePages()
		if n == 0 {
			return p
		}
		for i := 0; i < n; i++ {
			if _, ok := t.ScanOne(); !ok {
				return p
			}
		}
		t.PruneShared()
		if t.Stats.SharedMerges+t.Stats.HintPromotions == merges && p > 0 {
			return p + 1
		}
	}
	return maxPasses
}

// SoftwareComparer compares pages on a core (byte-wise through Phys).
type SoftwareComparer struct {
	Phys *mem.Phys
}

// SamePage implements Comparer.
func (c SoftwareComparer) SamePage(cand mem.PFN, others []mem.PFN) (int, int) {
	total := 0
	for i, o := range others {
		same, n := c.Phys.SamePage(cand, o)
		total += n
		if same {
			return i, total
		}
	}
	return -1, total
}
