package esx

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/dram"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/pageforge"
	"repro/internal/sim"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// world builds a hypervisor and one VM per content list, all mergeable.
func world(t testing.TB, frames int, contents ...[]byte) (*vm.Hypervisor, []*vm.VM) {
	t.Helper()
	h := vm.NewHypervisor(uint64(frames) * mem.PageSize)
	var vms []*vm.VM
	for _, cs := range contents {
		v := h.NewVM(uint64(len(cs)) * mem.PageSize)
		v.Madvise(0, len(cs), true)
		for g, c := range cs {
			if _, err := v.Write(vm.GFN(g), 0, bytes.Repeat([]byte{c}, mem.PageSize)); err != nil {
				t.Fatal(err)
			}
		}
		vms = append(vms, v)
	}
	return h, vms
}

func softwareTable(h *vm.Hypervisor) *Table {
	return New(h, SoftwareComparer{Phys: h.Phys})
}

func hardwareTable(h *vm.Hypervisor) (*Table, *HardwareComparer) {
	mc := memctrl.New(dram.New(dram.DefaultConfig()), h.Phys, nil)
	cmp := NewHardwareComparer(pageforge.NewEngine(mc))
	return New(h, cmp), cmp
}

func TestHintThenPromotion(t *testing.T) {
	h, _ := world(t, 64, []byte{7}, []byte{7})
	tab := softwareTable(h)
	// Page A: hint insert. Page B: hint promotion (merge).
	if m, _ := tab.ScanOne(); m {
		t.Fatal("first sighting merged")
	}
	if tab.Stats.HintInserts != 1 {
		t.Fatalf("HintInserts = %d", tab.Stats.HintInserts)
	}
	m, _ := tab.ScanOne()
	if !m {
		t.Fatal("second identical page did not merge")
	}
	if tab.Stats.HintPromotions != 1 {
		t.Fatalf("HintPromotions = %d", tab.Stats.HintPromotions)
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", h.Phys.AllocatedFrames())
	}
}

func TestThirdPageJoinsSharedFrame(t *testing.T) {
	h, _ := world(t, 64, []byte{7}, []byte{7}, []byte{7})
	tab := softwareTable(h)
	for i := 0; i < 3; i++ {
		tab.ScanOne()
	}
	if tab.Stats.SharedMerges != 1 || tab.Stats.HintPromotions != 1 {
		t.Fatalf("merges shared/promo = %d/%d, want 1/1",
			tab.Stats.SharedMerges, tab.Stats.HintPromotions)
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d", h.Phys.AllocatedFrames())
	}
	if tab.SharedFrames() != 1 {
		t.Fatalf("shared frames = %d", tab.SharedFrames())
	}
}

func TestDistinctPagesOnlyHint(t *testing.T) {
	h, _ := world(t, 64, []byte{1, 2}, []byte{3, 4})
	tab := softwareTable(h)
	tab.RunToSteadyState(4)
	if tab.Stats.SharedMerges+tab.Stats.HintPromotions != 0 {
		t.Fatal("distinct pages merged")
	}
	if h.Phys.AllocatedFrames() != 4 {
		t.Fatalf("frames = %d", h.Phys.AllocatedFrames())
	}
}

func TestChangedHintIsRefreshed(t *testing.T) {
	h, vms := world(t, 64, []byte{5}, []byte{5})
	tab := softwareTable(h)
	tab.ScanOne() // hint for content 5 -> page A
	// Page A changes before B is scanned: the stale hint must not merge.
	vms[0].Write(0, 0, bytes.Repeat([]byte{9}, mem.PageSize))
	m, _ := tab.ScanOne() // B: hint's hash no longer matches
	if m {
		t.Fatal("merged against a changed hint")
	}
	if tab.Stats.HintUpdates != 1 {
		t.Fatalf("HintUpdates = %d", tab.Stats.HintUpdates)
	}
	// Next pass: A (content 9) re-hinted, B's hint holds content 5... then
	// nothing identical exists, so still no merges.
	tab.RunToSteadyState(4)
	if h.Merges != 0 {
		t.Fatal("phantom merge")
	}
}

func TestCowBreakThenRemerge(t *testing.T) {
	h, vms := world(t, 64, []byte{5}, []byte{5})
	tab := softwareTable(h)
	tab.RunToSteadyState(4)
	if h.Merges != 1 {
		t.Fatal("setup merge failed")
	}
	vms[0].Write(0, 0, bytes.Repeat([]byte{6}, mem.PageSize))
	vms[0].Write(0, 0, bytes.Repeat([]byte{5}, mem.PageSize))
	tab.RunToSteadyState(4)
	if h.Merges != 2 {
		t.Fatalf("Merges = %d, want re-merge into the shared frame", h.Merges)
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d", h.Phys.AllocatedFrames())
	}
}

func TestSharedFramePrunedAfterAllLeave(t *testing.T) {
	h, vms := world(t, 64, []byte{5}, []byte{5})
	tab := softwareTable(h)
	tab.RunToSteadyState(4)
	vms[0].Write(0, 0, bytes.Repeat([]byte{1}, mem.PageSize))
	vms[1].Write(0, 0, bytes.Repeat([]byte{2}, mem.PageSize))
	// The next scans prune the dead shared frame (its only ref is ours).
	tab.RunToSteadyState(4)
	if tab.SharedFrames() != 0 {
		t.Fatalf("shared frames = %d, want 0", tab.SharedFrames())
	}
	if h.Phys.AllocatedFrames() != 2 {
		t.Fatalf("frames = %d, want the two private pages", h.Phys.AllocatedFrames())
	}
}

func TestHardwareListModeMatchesSoftware(t *testing.T) {
	layout := [][]byte{
		{10, 11, 12, 13, 10},
		{10, 11, 12, 14, 15},
		{10, 11, 16, 13, 15},
	}
	hs, _ := world(t, 256, layout...)
	sw := softwareTable(hs)
	sw.RunToSteadyState(6)

	hh, _ := world(t, 256, layout...)
	hw, cmp := hardwareTable(hh)
	hw.RunToSteadyState(6)

	if hs.Phys.AllocatedFrames() != hh.Phys.AllocatedFrames() {
		t.Fatalf("software %d frames vs hardware %d",
			hs.Phys.AllocatedFrames(), hh.Phys.AllocatedFrames())
	}
	if hw.Stats.SharedMerges != sw.Stats.SharedMerges ||
		hw.Stats.HintPromotions != sw.Stats.HintPromotions {
		t.Fatalf("merge paths differ: hw %+v vs sw %+v", hw.Stats, sw.Stats)
	}
	if cmp.Batches == 0 || cmp.Polls == 0 {
		t.Fatal("hardware never used")
	}
	if cmp.Now() == 0 {
		t.Fatal("no hardware time consumed")
	}
}

func TestHardwareListBatchesLongBuckets(t *testing.T) {
	// A bucket longer than one Scan Table load (31 entries) must be walked
	// in multiple batches. Build 40 shared frames colliding... instead:
	// directly exercise the comparer with 40 candidate frames.
	h, _ := world(t, 256, make([]byte, 0))
	phys := h.Phys
	var frames []mem.PFN
	for i := 0; i < 40; i++ {
		pfn, err := phys.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg := phys.Page(pfn)
		for j := range pg {
			pg[j] = byte(i + 1)
		}
		frames = append(frames, pfn)
	}
	cand, _ := phys.Alloc()
	copy(phys.Page(cand), phys.Page(frames[37])) // match deep in batch 2
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	cmp := NewHardwareComparer(pageforge.NewEngine(mc))
	match, bytesRead := cmp.SamePage(cand, frames)
	if match != 37 {
		t.Fatalf("match = %d, want 37", match)
	}
	if cmp.Batches < 2 {
		t.Fatalf("batches = %d, want >= 2 for 40 entries", cmp.Batches)
	}
	if bytesRead == 0 {
		t.Fatal("no bytes accounted")
	}
	// A no-match probe walks everything.
	miss, _ := phys.Alloc()
	phys.Page(miss)[0] = 0xEE
	if m, _ := cmp.SamePage(miss, frames); m != -1 {
		t.Fatalf("phantom match %d", m)
	}
}

func TestESXOnTailbenchImageMatchesKSMSavings(t *testing.T) {
	// Both algorithms must find the same duplicate structure on a real
	// deployment image (they differ in cost, not in what is mergeable).
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 200
	imgA, err := tailbench.BuildImage(app, 6, 6*200*2, 11)
	if err != nil {
		t.Fatal(err)
	}
	esxTab := softwareTable(imgA.HV)
	esxTab.RunToSteadyState(8)

	imgB, err := tailbench.BuildImage(app, 6, 6*200*2, 11)
	if err != nil {
		t.Fatal(err)
	}
	ks := ksm.NewScanner(ksm.NewAlgorithm(imgB.HV, ksm.JHasher{}), ksm.DefaultCosts())
	ks.RunToSteadyState(12)

	fa := imgA.MeasureFootprint()
	fb := imgB.MeasureFootprint()
	if fa.FramesAllocated != fb.FramesAllocated {
		t.Fatalf("ESX %d frames vs KSM %d", fa.FramesAllocated, fb.FramesAllocated)
	}
	// ESX converges with far fewer comparisons (hash-indexed, no trees).
	if esxTab.Stats.Comparisons >= ks.Alg.Stable.Comparisons()+ks.Alg.Unstable.Comparisons() {
		t.Fatalf("ESX comparisons %d not below KSM's %d",
			esxTab.Stats.Comparisons, ks.Alg.Stable.Comparisons()+ks.Alg.Unstable.Comparisons())
	}
}

func TestRandomWorkloadsConvergeToContentGroups(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		const nVM, nPg = 4, 8
		contents := make([][]byte, nVM)
		distinct := map[byte]bool{}
		for i := range contents {
			contents[i] = make([]byte, nPg)
			for j := range contents[i] {
				c := byte(1 + r.Intn(7))
				contents[i][j] = c
				distinct[c] = true
			}
		}
		h, _ := world(&testing.T{}, 256, contents...)
		tab := softwareTable(h)
		tab.RunToSteadyState(10)
		return h.Phys.AllocatedFrames() == len(distinct)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPageHash64Distinctness(t *testing.T) {
	r := sim.NewRNG(3)
	seen := map[uint64]bool{}
	page := make([]byte, mem.PageSize)
	for i := 0; i < 20000; i++ {
		r.FillBytes(page)
		h := PageHash64(page)
		if seen[h] {
			t.Fatal("64-bit page hash collision on random data")
		}
		seen[h] = true
	}
	// Determinism.
	if PageHash64(page) != PageHash64(page) {
		t.Fatal("hash not deterministic")
	}
}
