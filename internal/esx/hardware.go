package esx

import (
	"repro/internal/mem"
	"repro/internal/pageforge"
)

// HardwareComparer runs the exhaustive comparisons on the PageForge engine
// in *list mode* — the §4.2 generality example: "the OS sets both the Less
// and More fields to the same value: that of the subsequent entry in the
// Scan table. In this way, all the pages are selected for comparison."
type HardwareComparer struct {
	HW *pageforge.Engine
	// PollInterval is the OS checking period (Table 5: 12,000 cycles).
	PollInterval uint64

	now     uint64
	Batches uint64
	Polls   uint64
}

// NewHardwareComparer wraps an engine with the default polling period.
func NewHardwareComparer(hw *pageforge.Engine) *HardwareComparer {
	return &HardwareComparer{HW: hw, PollInterval: 12_000}
}

// Now reports the comparer's wall clock (cycles of hardware time consumed).
func (c *HardwareComparer) Now() uint64 { return c.now }

// SamePage implements Comparer by loading the bucket as a linked list into
// the Scan Table, in batches of up to NumOtherPages entries.
func (c *HardwareComparer) SamePage(cand mem.PFN, others []mem.PFN) (int, int) {
	linesBefore := c.HW.LinesFetched
	first := true
	for start := 0; start < len(others); start += pageforge.NumOtherPages {
		end := start + pageforge.NumOtherPages
		if end > len(others) {
			end = len(others)
		}
		batch := others[start:end]
		for i, pfn := range batch {
			next := i + 1
			if i == len(batch)-1 {
				next = pageforge.InvalidIndex
			}
			c.HW.InsertPPN(i, pfn, next, next)
		}
		last := end == len(others)
		if first {
			c.HW.InsertPFE(cand, last, 0)
			first = false
		} else {
			c.HW.UpdatePFE(last, 0)
		}
		c.HW.Trigger(c.now)
		c.Batches++
		var info pageforge.PFEInfo
		for {
			c.now += c.PollInterval
			c.Polls++
			info = c.HW.GetPFEInfo(c.now)
			if info.Scanned {
				break
			}
		}
		bytes := int(c.HW.LinesFetched-linesBefore) * mem.LineSize / 2
		if info.Duplicate {
			return start + info.Ptr, bytes
		}
	}
	return -1, int(c.HW.LinesFetched-linesBefore) * mem.LineSize / 2
}
