// Package extest is the shared harness for the examples' smoke tests: it
// compiles and runs the example in the test's working directory and checks
// it exits cleanly with the expected output header. Keeping the logic here
// lets each examples/<name> package carry a one-line test.
package extest

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// Timeout bounds one example run; the examples are demos and finish in
// seconds, so a hang is a bug, not load.
const Timeout = 3 * time.Minute

// Smoke runs `go run .` in the current (example) directory and asserts a
// zero exit status and that stdout contains the given header line.
func Smoke(t *testing.T, wantHeader string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), Timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", "run", ".")
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("example did not finish within %v\noutput:\n%s", Timeout, out)
	}
	if err != nil {
		t.Fatalf("example exited with error: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(string(out), wantHeader) {
		t.Fatalf("output missing header %q:\n%s", wantHeader, out)
	}
}
