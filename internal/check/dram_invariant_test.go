package check

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

// TestDRAMBytesNeverExceedBytesTouched sweeps generated scenarios (the same
// distribution the verify experiment draws from, including sharded-parallel
// configurations and fault storms) and checks the scan-accounting
// invariant: the DRAM traffic attributed to scanning can never exceed the
// bytes the scanner streamed through the cache hierarchy. The early-exit
// word compare changed how comparisons terminate; this pins that the
// byte-flow accounting did not drift with it.
func TestDRAMBytesNeverExceedBytesTouched(t *testing.T) {
	for seed := uint64(0); seed < 24; seed++ {
		sc := workload.Generate(seed)
		res, err := platform.Run(platform.KSM, sc.Profile(), sc.Config())
		if err != nil {
			t.Fatalf("scenario %s: %v", sc, err)
		}
		touched := res.Metrics.Counters["ksm/bytes_touched"]
		dram := res.Metrics.Counters["ksm/dram_bytes"]
		if touched == 0 {
			t.Fatalf("scenario %s: scanner touched no bytes — sweep exercised nothing", sc)
		}
		if dram > touched {
			t.Errorf("scenario %s: ksm/dram_bytes %d > ksm/bytes_touched %d", sc, dram, touched)
		}
	}
}
