package check

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/workload"
)

// Options tunes a verification run.
type Options struct {
	// Tamper is forwarded to both checkers (test fault injection).
	Tamper func(p platform.VerifyPoint)
}

// Report summarizes one verified scenario.
type Report struct {
	Scenario  workload.Scenario
	KSM       Counters
	PageForge Counters
	// FaultFree records whether the scenario injected no faults; the
	// differential and completeness checks only apply then.
	FaultFree bool
	// DiffChecked reports whether the KSM ≡ PageForge merge-set
	// equivalence was evaluated; Groups is the shared group count.
	DiffChecked bool
	Groups      int
	// LedgerAudited reports whether the provenance-ledger replay audit ran
	// (Scenario.LedgerOn and the ring never wrapped); LedgerMappings counts
	// the guest mappings whose final location the replay pinned down, summed
	// across both engine modes.
	LedgerAudited  bool
	LedgerMappings int
}

// RunScenario runs one scenario through both dedup engines with full
// invariant checking and, on fault-free converged runs, the differential
// merge-set equivalence. A nil error means every check passed.
func RunScenario(sc workload.Scenario) (*Report, error) {
	return RunScenarioOpts(sc, Options{})
}

// RunScenarioOpts is RunScenario with test hooks.
func RunScenarioOpts(sc workload.Scenario, opt Options) (*Report, error) {
	// The hash gate defers first-sighting pages to the next pass, so full
	// convergence of clean duplicates needs at least two passes. Pressured
	// scenarios balloon-release pages at engine-dependent times, so their
	// merge sets are not mode-comparable and never "converged" in this
	// sense — the per-pass invariants (1–3) are still enforced throughout,
	// including while ballooning and throttling are active. Live-event
	// scenarios change the mergeable population at event-relative times
	// (spawn/kill/phase flip), which the two engines absorb on different
	// schedules, so they are gated out of the differential check the same way.
	converged := sc.DiffComparable()

	rep := &Report{FaultFree: sc.FaultFree()}
	runMode := func(mode platform.Mode) (*Checker, error) {
		ck := &Checker{Tamper: opt.Tamper}
		cfg := sc.Config()
		cfg.Verifier = ck
		if _, err := platform.Run(mode, sc.Profile(), cfg); err != nil {
			return ck, err
		}
		if err := ck.Final(converged); err != nil {
			return ck, err
		}
		// Cross-check the provenance ledger's replay against the page tables
		// (Config() mints a fresh per-run ledger when the scenario asks).
		if n, audited, err := AuditLedger(cfg.Ledger, ck.hv); audited {
			rep.LedgerAudited = true
			rep.LedgerMappings += n
			if err != nil {
				return ck, fmt.Errorf("%w (mode %s, scenario %s)", err, mode, sc)
			}
		}
		return ck, nil
	}

	rep.Scenario = sc
	kc, err := runMode(platform.KSM)
	rep.KSM = kc.Counters
	if err != nil {
		return rep, err
	}
	pc, err := runMode(platform.PageForge)
	rep.PageForge = pc.Counters
	if err != nil {
		return rep, err
	}

	if converged {
		gk, gp := kc.MergeGroups(), pc.MergeGroups()
		if err := DiffMergeSets(gk, gp); err != nil {
			return rep, fmt.Errorf("%w (scenario %s)", err, sc)
		}
		rep.DiffChecked = true
		rep.Groups = len(gk)
	}
	return rep, nil
}
