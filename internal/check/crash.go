package check

import (
	"repro/internal/vm"
)

// Crash support. The checker's shadow model is part of the verification
// world, not the simulated world, so the platform's checkpoint blobs do not
// contain it — instead the checker implements platform.CrashObserver and
// keeps its own per-checkpoint model clones. When a crash restores the
// machine to pass P, Restored rewinds the shadow to the clone taken at P;
// every audit during the replay then compares the rewound machine against
// the rewound reference. Without this rewind the model would remember
// writes the crash destroyed and the very first post-restore audit would
// (wrongly) report divergence.

// Clone deep-copies the model (shadow pages and dirty marks).
func (m *Model) Clone() *Model {
	c := NewModel()
	for id, page := range m.shadow {
		p := make([]byte, len(page))
		copy(p, page)
		c.shadow[id] = p
	}
	for id, d := range m.dirty {
		c.dirty[id] = d
	}
	return c
}

// Rebind re-installs the model as the hypervisor's write observer without
// re-snapshotting (Attach would overwrite the rewound shadow with the
// machine's current contents, destroying exactly the reference a restore
// needs).
func (m *Model) Rebind(hv *vm.Hypervisor) {
	hv.OnWrite = m.observe
	hv.OnRelease = m.observeRelease
}

// Checkpoint implements platform.CrashObserver: clone the shadow model at
// the checkpointed pass (-1 = boot).
func (c *Checker) Checkpoint(pass int) {
	if c.saved == nil {
		c.saved = map[int]*Model{}
	}
	c.saved[pass] = c.Model.Clone()
}

// Restored implements platform.CrashObserver: rewind the shadow model to
// the clone taken at the restored pass and re-attach it to the hypervisor's
// write stream. Cloning again on the way out keeps the saved image pristine
// for back-to-back crashes restoring the same checkpoint.
func (c *Checker) Restored(pass int) {
	saved := c.saved[pass]
	if saved == nil {
		// The platform never restores a pass it did not checkpoint; treat a
		// miss as corruption of the page the next audit will expose.
		return
	}
	c.Model = saved.Clone()
	c.Model.Rebind(c.hv)
}
