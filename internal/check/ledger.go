package check

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/vm"
)

// AuditLedger replays the provenance ledger's mapping-moving events and
// cross-checks the implied final location of every tracked guest mapping
// against the hypervisor's page tables — the "explain ≡ reality" property:
// a frame history rendered by `pageforge explain` must end where the page
// actually is.
//
// Replay semantics: a merged or CoW-broken event moves the (VM, GFN)
// mapping to its Arg frame (the merge target / the private copy); an evicted
// or ballooned event removes the mapping from tracking — the page may later
// be demand-reallocated by a guest write, which is an allocation, not a
// lifecycle transition, so reclaimed mappings leave the audit's scope until
// an engine event picks them up again. Mappings whose last event is a move
// must resolve to exactly that frame at the end of the run.
//
// The audit is sound only over a complete history: a wrapped ring (dropped
// events) or a mapping-moving event with an unresolved VM would make the
// replay guess, so it reports audited=false instead of failing.
func AuditLedger(l *obs.Ledger, hv *vm.Hypervisor) (mappings int, audited bool, err error) {
	if !l.Enabled() || l.Dropped() > 0 {
		return 0, false, nil
	}
	type key struct {
		vm  int
		gfn uint64
	}
	loc := map[key]uint64{}
	for _, e := range l.Events() {
		switch e.Kind {
		case obs.LKMerged, obs.LKCoWBroken:
			if e.VM < 0 {
				return 0, false, nil
			}
			loc[key{e.VM, e.GFN}] = e.Arg
		case obs.LKEvicted, obs.LKBallooned:
			delete(loc, key{e.VM, e.GFN})
		}
	}
	keys := make([]key, 0, len(loc))
	for k := range loc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].vm != keys[j].vm {
			return keys[i].vm < keys[j].vm
		}
		return keys[i].gfn < keys[j].gfn
	})
	for _, k := range keys {
		want := loc[k]
		pfn, ok := hv.VM(k.vm).Resolve(vm.GFN(k.gfn))
		if !ok {
			return len(keys), true, fmt.Errorf(
				"check: ledger audit: vm%d gfn%d last moved to frame %d but is no longer present",
				k.vm, k.gfn, want)
		}
		if uint64(pfn) != want {
			return len(keys), true, fmt.Errorf(
				"check: ledger audit: vm%d gfn%d resolves to frame %d, ledger replay says %d",
				k.vm, k.gfn, pfn, want)
		}
	}
	return len(keys), true, nil
}
