package check

import (
	"fmt"
	"strings"
)

// DiffMergeSets compares the clean merge sets observed under two engine
// modes and returns a descriptive error when they differ. Both inputs are
// canonical group renderings from Checker.MergeGroups. On fault-free
// converged runs the software and hardware engines must agree exactly:
// clean-page contents are mode-independent and both engines are required
// to fold every duplicate group completely.
func DiffMergeSets(ksmGroups, pfGroups []string) error {
	k := map[string]bool{}
	for _, g := range ksmGroups {
		k[g] = true
	}
	p := map[string]bool{}
	for _, g := range pfGroups {
		p[g] = true
	}
	var onlyK, onlyP []string
	for _, g := range ksmGroups {
		if !p[g] {
			onlyK = append(onlyK, g)
		}
	}
	for _, g := range pfGroups {
		if !k[g] {
			onlyP = append(onlyP, g)
		}
	}
	if len(onlyK) == 0 && len(onlyP) == 0 {
		return nil
	}
	clip := func(gs []string) string {
		if len(gs) > 3 {
			gs = append(append([]string{}, gs[:3]...), fmt.Sprintf("… %d more", len(gs)-3))
		}
		return strings.Join(gs, "; ")
	}
	return fmt.Errorf("check: differential: merge sets diverge: %d group(s) only under KSM [%s], %d only under PageForge [%s]",
		len(onlyK), clip(onlyK), len(onlyP), clip(onlyP))
}
