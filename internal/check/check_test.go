package check

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/vm"
	"repro/internal/workload"
)

// smallScenario is a hand-picked fast scenario with every mechanism on:
// duplication, zero pages, churn, and both phases.
func smallScenario() workload.Scenario {
	return workload.Scenario{
		Seed: 42, VMs: 3, PagesPerVM: 60,
		DupFrac: 0.5, ZeroFrac: 0.1, DupCopies: 3, VolatileFrac: 0.2,
		ConvergePasses: 4, MeasureIntervals: 2, PagesToScan: 200,
	}
}

func TestCleanScenarioPassesAllInvariants(t *testing.T) {
	rep, err := RunScenario(smallScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DiffChecked {
		t.Fatal("fault-free converged scenario must run the differential check")
	}
	if rep.Groups == 0 {
		t.Fatal("expected shared clean merge groups")
	}
	for mode, c := range map[string]Counters{"KSM": rep.KSM, "PageForge": rep.PageForge} {
		if c.Intervals == 0 || c.ContentChecks == 0 || c.RefcountChecks == 0 {
			t.Fatalf("%s: checker did no work: %+v", mode, c)
		}
		if c.CompletenessGroups == 0 {
			t.Fatalf("%s: completeness oracle audited no groups", mode)
		}
	}
}

func TestFaultedScenarioPassesInvariants(t *testing.T) {
	sc := smallScenario()
	sc.FaultRate = 0.02
	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiffChecked {
		t.Fatal("faulted runs must skip the differential check")
	}
}

// TestLiveEventScenarioPassesInvariants runs a schedule with every live
// event — a mid-run spawn, a VM kill, and a phase flip — under full
// invariant checking with the provenance ledger attached: the shadow model
// must absorb the spawned VM's pages, handle the victim's teardown (frames
// freed, refcounts balanced), and skip the cross-engine differential check.
func TestLiveEventScenarioPassesInvariants(t *testing.T) {
	sc := smallScenario()
	sc.LedgerOn = true
	sc.SpawnAtPass = 2
	sc.KillVMAtPass = 3
	sc.KillVM = 1
	sc.PhaseFlipAtPass = 3
	if !sc.HasLiveEvents() {
		t.Fatal("scenario must report live events")
	}
	rep, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiffChecked {
		t.Fatal("live-event runs must skip the differential check")
	}
	for mode, c := range map[string]Counters{"KSM": rep.KSM, "PageForge": rep.PageForge} {
		if c.ContentChecks == 0 || c.RefcountChecks == 0 {
			t.Fatalf("%s: checker did no work: %+v", mode, c)
		}
	}
}

func TestModelTracksWrites(t *testing.T) {
	hv := vm.NewHypervisor(64 * mem.PageSize)
	v := hv.NewVM(4 * mem.PageSize)
	if _, err := v.Write(0, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	m := NewModel()
	m.Attach(hv)
	id := vm.PageID{VM: v.ID, GFN: 0}
	if !m.Clean(id) {
		t.Fatal("snapshot pages start clean")
	}
	if got := m.Expected(id); got[0] != 1 || got[2] != 3 {
		t.Fatalf("snapshot missed initial contents: % x", got[:4])
	}
	if _, err := v.Write(0, 1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if m.Clean(id) {
		t.Fatal("written page must be dirty")
	}
	if got := m.Expected(id); got[0] != 1 || got[1] != 9 || got[2] != 3 {
		t.Fatalf("shadow missed observed write: % x", got[:4])
	}
}

// tamperContent flips one byte of the first shared frame it sees, writing
// the physical array directly (bypassing the hypervisor write path) — the
// exact class of bug invariant 1 exists to catch.
func tamperContent(fired *bool) func(p platform.VerifyPoint) {
	return func(p platform.VerifyPoint) {
		if *fired {
			return
		}
		phys := p.HV.Phys
		for pfn := mem.PFN(0); int(pfn) < phys.TotalFrames(); pfn++ {
			if phys.Allocated(pfn) && len(p.HV.Mappers(pfn)) >= 2 && !phys.IsZero(pfn) {
				phys.Page(pfn)[100] ^= 0xFF
				*fired = true
				return
			}
		}
	}
}

func TestCheckerCatchesContentCorruptionAndShrinks(t *testing.T) {
	failsWith := func(sc workload.Scenario) (bool, error) {
		fired := false
		_, err := RunScenarioOpts(sc, Options{Tamper: tamperContent(&fired)})
		return err != nil && strings.Contains(err.Error(), "invariant 1"), err
	}

	sc := workload.Generate(7)
	sc.FaultRate = 0 // keep probes fast and the failure unambiguous
	caught, err := failsWith(sc)
	if !caught {
		t.Fatalf("injected content corruption not caught as invariant 1 (err=%v)", err)
	}

	shrunk, probes := workload.Shrink(sc, func(s workload.Scenario) bool {
		ok, _ := failsWith(s)
		return ok
	}, 60)
	caught, err = failsWith(shrunk)
	if !caught {
		t.Fatalf("shrunk scenario no longer fails (err=%v)", err)
	}
	if shrunk.VMs > sc.VMs || shrunk.PagesPerVM > sc.PagesPerVM || shrunk.ConvergePasses > sc.ConvergePasses {
		t.Fatalf("shrinker made the scenario bigger: %v -> %v", sc, shrunk)
	}
	if shrunk == sc {
		t.Fatalf("shrinker made no progress in %d probes on %v", probes, sc)
	}
	t.Logf("shrunk %v -> %v in %d probes", sc, shrunk, probes)

	repro := workload.ReproTest(shrunk, err)
	for _, want := range []string{"func TestRepro_", "check.RunScenario", "workload.Scenario{"} {
		if !strings.Contains(repro, want) {
			t.Fatalf("repro test missing %q:\n%s", want, repro)
		}
	}
}

func TestCheckerCatchesRefcountBug(t *testing.T) {
	fired := false
	_, err := RunScenarioOpts(smallScenario(), Options{Tamper: func(p platform.VerifyPoint) {
		if fired {
			return
		}
		phys := p.HV.Phys
		for pfn := mem.PFN(0); int(pfn) < phys.TotalFrames(); pfn++ {
			if phys.Allocated(pfn) {
				phys.IncRef(pfn) // leaked reference, mapped nowhere
				fired = true
				return
			}
		}
	}})
	if err == nil || !strings.Contains(err.Error(), "invariant 2") {
		t.Fatalf("leaked frame reference not caught as invariant 2: %v", err)
	}
}
