// Package check implements model-based differential verification of merge
// semantics: a pure reference model of what every guest page should
// contain, an invariant checker that audits the simulated machine at every
// scan interval, and a differential comparison of the merge sets produced
// by the software (KSM) and hardware (PageForge) engines.
//
// The model is deliberately simulation-free: it knows nothing about trees,
// scan tables, CoW protocols, or fault handling. It only tracks "page P was
// written bytes B", which is the ground truth every one of those mechanisms
// must preserve.
package check

import (
	"repro/internal/mem"
	"repro/internal/vm"
)

// Model is the reference content model: a shadow copy of every guest
// page's bytes, maintained purely from the hypervisor's write stream. At
// any instant, page id must read exactly shadow[id] regardless of which
// frame backs it — merging, CoW breaking, quarantining, and fault recovery
// are all required to be content-transparent.
type Model struct {
	shadow map[vm.PageID][]byte
	// dirty marks pages written after the snapshot: their contents diverge
	// across engine modes (scan timing differs), so the differential
	// equivalence check projects them out.
	dirty map[vm.PageID]bool
}

// NewModel returns an empty model; call Attach to snapshot a hypervisor.
func NewModel() *Model {
	return &Model{shadow: map[vm.PageID][]byte{}, dirty: map[vm.PageID]bool{}}
}

// Attach snapshots every present guest page and installs the model as the
// hypervisor's write observer. Call it after the image is built and before
// any scanning; from then on the shadow tracks all guest writes.
func (m *Model) Attach(hv *vm.Hypervisor) {
	for i := 0; i < hv.NumVMs(); i++ {
		v := hv.VM(i)
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			pfn, ok := v.Resolve(g)
			if !ok {
				continue
			}
			page := make([]byte, mem.PageSize)
			copy(page, hv.Phys.Page(pfn))
			m.shadow[vm.PageID{VM: i, GFN: g}] = page
		}
	}
	hv.OnWrite = m.observe
	hv.OnRelease = m.observeRelease
}

// observe applies one guest write to the shadow. It runs on the
// hypervisor's write path and must not touch simulation state.
func (m *Model) observe(id vm.PageID, off int, data []byte) {
	page := m.shadow[id]
	if page == nil {
		page = make([]byte, mem.PageSize)
		m.shadow[id] = page
	}
	copy(page[off:], data)
	m.dirty[id] = true
}

// observeRelease applies one guest page release (balloon inflation, burst
// teardown) to the shadow: a released page that is later re-touched
// zero-fill faults, so its reference contents are zeros. The page is marked
// dirty — when it is reclaimed is engine-timing dependent, so its contents
// are not comparable across modes.
func (m *Model) observeRelease(id vm.PageID) {
	page := m.shadow[id]
	if page == nil {
		page = make([]byte, mem.PageSize)
		m.shadow[id] = page
	} else {
		for i := range page {
			page[i] = 0
		}
	}
	m.dirty[id] = true
}

// Expected returns the reference contents of the page (nil if the page was
// never present).
func (m *Model) Expected(id vm.PageID) []byte { return m.shadow[id] }

// Clean reports whether the page still holds its image-build contents
// (never written since the snapshot). Clean pages have deterministic,
// mode-independent contents, which makes their merge structure comparable
// across engines.
func (m *Model) Clean(id vm.PageID) bool { return !m.dirty[id] }

// Pages returns the number of tracked pages.
func (m *Model) Pages() int { return len(m.shadow) }
