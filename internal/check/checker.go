package check

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/rbtree"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// Counters tallies the audit work one checker performed, so experiment
// output can show that the invariants were actually exercised.
type Counters struct {
	Intervals          int // observation points audited
	ContentChecks      int // page-content comparisons against the model
	RefcountChecks     int // frames whose refcount ledger was audited
	QuarantineChecks   int // quarantined frames audited for exclusion
	CompletenessGroups int // duplicate-content groups checked at the end
}

// Checker audits a platform run against the reference model. It implements
// platform.Verifier; wire it in via Config.Verifier. The four invariants:
//
//  1. Content: every present guest page reads exactly what the model says
//     it should — equivalently, no two pages with different reference
//     contents ever share a frame.
//  2. Refcounts: every allocated frame's refcount equals its mapper count
//     plus the dedup engine's tree/zero-frame holds; shared frames are CoW
//     and every mapping of a shared frame is write-protected.
//  3. Quarantine: frames withdrawn by the UE policy are never stable-tree
//     members and never gain sharers while the hardware engine is live.
//  4. Completeness (Final): on a converged fault-free run, every group of
//     ≥2 clean same-content mergeable pages shares exactly one frame.
type Checker struct {
	Model    *Model
	Mode     platform.Mode
	Counters Counters

	// Tamper, when set, runs before the checks at every observation point.
	// Tests use it to inject model or machine corruption and prove the
	// checker catches it; production runs leave it nil.
	Tamper func(p platform.VerifyPoint)

	hv *vm.Hypervisor
	// saved holds the shadow-model clones taken at platform checkpoints
	// (keyed by pass; -1 = boot), so crash restores can rewind the reference
	// alongside the machine. See crash.go.
	saved map[int]*Model
}

// BeginRun implements platform.Verifier: snapshot the freshly-built image.
func (c *Checker) BeginRun(mode platform.Mode, img *tailbench.Image) {
	c.Mode = mode
	c.hv = img.HV
	if c.Model == nil {
		c.Model = NewModel()
	}
	c.Model.Attach(img.HV)
}

// Interval implements platform.Verifier: audit one observation point.
func (c *Checker) Interval(p platform.VerifyPoint) error {
	if c.Tamper != nil {
		c.Tamper(p)
	}
	c.Counters.Intervals++
	if err := c.checkContents(); err != nil {
		return c.fail(p, err)
	}
	if err := c.checkRefcounts(p); err != nil {
		return c.fail(p, err)
	}
	if err := c.checkQuarantine(p); err != nil {
		return c.fail(p, err)
	}
	return nil
}

func (c *Checker) fail(p platform.VerifyPoint, err error) error {
	return fmt.Errorf("check: %s %s[%d]: %w", p.Mode, p.Phase, p.Index, err)
}

// eachPresent visits present guest pages in deterministic (VM, GFN) order.
func (c *Checker) eachPresent(visit func(id vm.PageID, pfn mem.PFN) error) error {
	for i := 0; i < c.hv.NumVMs(); i++ {
		v := c.hv.VM(i)
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			pfn, ok := v.Resolve(g)
			if !ok {
				continue
			}
			if err := visit(vm.PageID{VM: i, GFN: g}, pfn); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkContents enforces invariant 1: each page reads its model contents.
func (c *Checker) checkContents() error {
	return c.eachPresent(func(id vm.PageID, pfn mem.PFN) error {
		c.Counters.ContentChecks++
		want := c.Model.Expected(id)
		got := c.hv.Phys.Page(pfn)
		if want == nil {
			return fmt.Errorf("invariant 1: page %v present but unknown to the model", id)
		}
		if !bytes.Equal(got, want) {
			i := 0
			for i < len(want) && got[i] == want[i] {
				i++
			}
			return fmt.Errorf("invariant 1: page %v (frame %d, %d mappers) diverges from model at byte %d: got %#x want %#x",
				id, pfn, len(c.hv.Mappers(pfn)), i, got[i], want[i])
		}
		return nil
	})
}

// engineHolds counts the dedup engine's non-mapping frame references: one
// per stable node, one per unstable node, one for the dedicated zero frame.
func engineHolds(p platform.VerifyPoint) map[mem.PFN]int {
	holds := map[mem.PFN]int{}
	if p.Alg == nil {
		return holds
	}
	count := func(n *rbtree.Node) bool { holds[n.PFN]++; return true }
	p.Alg.Stable.InOrder(count)
	p.Alg.Unstable.InOrder(count)
	if zf, ok := p.Alg.ZeroPFN(); ok {
		holds[zf]++
	}
	return holds
}

// checkRefcounts enforces invariant 2: the frame refcount ledger balances
// and sharing implies write protection.
func (c *Checker) checkRefcounts(p platform.VerifyPoint) error {
	holds := engineHolds(p)
	phys := c.hv.Phys
	for pfn := mem.PFN(0); int(pfn) < phys.TotalFrames(); pfn++ {
		if !phys.Allocated(pfn) {
			if holds[pfn] > 0 {
				return fmt.Errorf("invariant 2: frame %d is free but the engine holds %d reference(s) on it", pfn, holds[pfn])
			}
			continue
		}
		c.Counters.RefcountChecks++
		f := phys.Get(pfn)
		mappers := c.hv.Mappers(pfn)
		want := len(mappers) + holds[pfn]
		if f.Refs() != want {
			return fmt.Errorf("invariant 2: frame %d refcount %d != %d mappers + %d engine holds",
				pfn, f.Refs(), len(mappers), holds[pfn])
		}
		if len(mappers) > 1 {
			if !f.CoW() {
				return fmt.Errorf("invariant 2: frame %d shared by %d pages but not CoW-protected", pfn, len(mappers))
			}
			for _, id := range mappers {
				if !c.hv.VM(id.VM).WriteProtected(id.GFN) {
					return fmt.Errorf("invariant 2: frame %d shared by %d pages but mapping %v is writable",
						pfn, len(mappers), id)
				}
			}
		}
	}
	return nil
}

// checkQuarantine enforces invariant 3 while the hardware engine is live
// (VerifyPoint.Quarantined is nil otherwise and the check is vacuous).
func (c *Checker) checkQuarantine(p platform.VerifyPoint) error {
	if p.Quarantined == nil {
		return nil
	}
	stable := map[mem.PFN]bool{}
	if p.Alg != nil {
		p.Alg.Stable.InOrder(func(n *rbtree.Node) bool { stable[n.PFN] = true; return true })
	}
	phys := c.hv.Phys
	for pfn := mem.PFN(0); int(pfn) < phys.TotalFrames(); pfn++ {
		if !phys.Allocated(pfn) || !p.Quarantined(pfn) {
			continue
		}
		c.Counters.QuarantineChecks++
		if stable[pfn] {
			return fmt.Errorf("invariant 3: quarantined frame %d is a stable-tree merge target", pfn)
		}
		if n := len(c.hv.Mappers(pfn)); n > 1 {
			return fmt.Errorf("invariant 3: quarantined frame %d gained sharers (%d mappers)", pfn, n)
		}
	}
	return nil
}

// Final enforces invariant 4 after the run: on a converged fault-free run
// (converged = fault-free and ≥2 convergence passes, since the hash gate
// defers first-sighting pages to the second pass), every duplicate-content
// group of clean mergeable pages must have been folded onto a single
// frame. Clean pages are never written, so the property persists through
// the measurement phase's churn.
func (c *Checker) Final(converged bool) error {
	if !converged {
		return nil
	}
	groups := map[string][]vm.PageID{}
	frames := map[string][]mem.PFN{}
	err := c.eachPresent(func(id vm.PageID, pfn mem.PFN) error {
		if !c.Model.Clean(id) || !c.hv.VM(id.VM).Mergeable(id.GFN) || c.hv.VM(id.VM).InHuge(id.GFN) {
			return nil
		}
		key := string(c.Model.Expected(id))
		groups[key] = append(groups[key], id)
		frames[key] = append(frames[key], pfn)
		return nil
	})
	if err != nil {
		return err
	}
	for key, ids := range groups {
		if len(ids) < 2 {
			continue
		}
		c.Counters.CompletenessGroups++
		for i, pfn := range frames[key] {
			if pfn != frames[key][0] {
				return fmt.Errorf("check: %s: invariant 4: clean duplicate pages %v (frame %d) and %v (frame %d) were never merged (group of %d)",
					c.Mode, ids[0], frames[key][0], ids[i], pfn, len(ids))
			}
		}
	}
	return nil
}

// MergeGroups reports the observed clean merge sets: for every frame
// shared by ≥2 clean pages, the sorted list of those pages, canonically
// rendered and sorted. Dirty pages are projected out — their contents (and
// hence merge membership) legitimately depend on engine timing — so the
// result is directly comparable across engine modes.
func (c *Checker) MergeGroups() []string {
	byFrame := map[mem.PFN][]string{}
	_ = c.eachPresent(func(id vm.PageID, pfn mem.PFN) error {
		if c.Model.Clean(id) {
			byFrame[pfn] = append(byFrame[pfn], id.String())
		}
		return nil
	})
	var out []string
	for _, ids := range byFrame {
		if len(ids) < 2 {
			continue
		}
		sort.Strings(ids)
		out = append(out, strings.Join(ids, "+"))
	}
	sort.Strings(out)
	return out
}
