package faults

// Trip is the degradation policy: when the uncorrectable-error rate on the
// PageForge fetch path crosses TripRate, the platform demotes the
// hardware engine to software KSM; it may re-arm only after the rate
// falls below ClearRate (hysteresis prevents flapping on a noisy rate
// estimate, and the gap is deliberately wide — a DIMM that tripped once
// is suspect).
type Trip struct {
	// TripRate is the smoothed UEs-per-fetch rate above which PageForge
	// degrades to software KSM.
	TripRate float64
	// ClearRate is the rate below which a tripped tracker re-arms.
	ClearRate float64
	// Alpha is the EWMA smoothing weight of each observation window.
	Alpha float64
	// MinFetches is the minimum number of new fetches a window must carry
	// before it updates the estimate; tiny windows are noise.
	MinFetches uint64
	// ClearWindows is the number of consecutive observation windows the
	// rate must stay below ClearRate before a tripped tracker re-arms; a
	// single window above ClearRate resets the streak. One clean window is
	// not evidence of health — a DIMM that tripped must prove itself over a
	// sustained quiet period before the platform re-promotes the hardware
	// engine. Zero takes the default.
	ClearWindows int
}

// DefaultTrip degrades when more than ~1% of line fetches poison, and
// re-arms only after 3 consecutive windows below 0.1%.
func DefaultTrip() Trip {
	return Trip{TripRate: 0.01, ClearRate: 0.001, Alpha: 0.4, MinFetches: 256, ClearWindows: 3}
}

// RateTracker maintains an exponentially-weighted UE-rate estimate from
// cumulative controller counters and applies the Trip thresholds.
type RateTracker struct {
	cfg Trip

	lastFetches uint64
	lastUEs     uint64
	rate        float64
	seeded      bool
	tripped     bool
	trippedAt   uint64 // stamp of the observation that tripped
	windows     uint64

	clearStreak int    // consecutive windows below ClearRate while tripped
	recoveries  uint64 // completed trip → re-arm cycles
	recoveredAt uint64 // stamp of the most recent re-arm
}

// NewRateTracker builds a tracker; zero-valued Trip fields fall back to
// the defaults so a partially-specified policy still behaves sanely.
func NewRateTracker(cfg Trip) *RateTracker {
	def := DefaultTrip()
	if cfg.TripRate <= 0 {
		cfg.TripRate = def.TripRate
	}
	if cfg.ClearRate <= 0 || cfg.ClearRate > cfg.TripRate {
		cfg.ClearRate = cfg.TripRate / 10
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = def.Alpha
	}
	if cfg.MinFetches == 0 {
		cfg.MinFetches = def.MinFetches
	}
	if cfg.ClearWindows <= 0 {
		cfg.ClearWindows = def.ClearWindows
	}
	return &RateTracker{cfg: cfg}
}

// Observe feeds one observation window from cumulative counters: total
// line fetches and total uncorrectable errors so far, plus an arbitrary
// caller stamp (pass index, interval index) recorded at the trip point.
// It returns true exactly when this observation trips the policy.
func (t *RateTracker) Observe(fetchesCum, uesCum, stamp uint64) bool {
	df := fetchesCum - t.lastFetches
	if df < t.cfg.MinFetches {
		return false
	}
	du := uesCum - t.lastUEs
	t.lastFetches, t.lastUEs = fetchesCum, uesCum
	w := float64(du) / float64(df)
	if !t.seeded {
		t.rate = w
		t.seeded = true
	} else {
		t.rate += t.cfg.Alpha * (w - t.rate)
	}
	t.windows++
	if !t.tripped && t.rate > t.cfg.TripRate {
		t.tripped = true
		t.trippedAt = stamp
		t.clearStreak = 0
		return true
	}
	if t.tripped {
		if t.rate < t.cfg.ClearRate {
			t.clearStreak++
			if t.clearStreak >= t.cfg.ClearWindows {
				t.tripped = false
				t.clearStreak = 0
				t.recoveries++
				t.recoveredAt = stamp
			}
		} else {
			t.clearStreak = 0
		}
	}
	return false
}

// Rate reports the current smoothed UEs-per-fetch estimate.
func (t *RateTracker) Rate() float64 { return t.rate }

// Degraded reports whether the tracker is currently tripped.
func (t *RateTracker) Degraded() bool { return t.tripped }

// TrippedAt reports the stamp passed to the tripping observation; valid
// only if a trip has occurred.
func (t *RateTracker) TrippedAt() uint64 { return t.trippedAt }

// Windows reports how many observation windows updated the estimate.
func (t *RateTracker) Windows() uint64 { return t.windows }

// Recoveries reports how many complete trip → re-arm cycles occurred.
func (t *RateTracker) Recoveries() uint64 { return t.recoveries }

// RecoveredAt reports the stamp of the most recent re-arm; valid only if
// Recoveries() > 0.
func (t *RateTracker) RecoveredAt() uint64 { return t.recoveredAt }
