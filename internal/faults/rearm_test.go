package faults

import "testing"

// TestRateTrackerRearmHysteresis drives the tracker through scripted
// window sequences and pins the re-arm policy: a tripped tracker clears
// only after ClearWindows consecutive windows below ClearRate, and any
// intervening window at or above ClearRate resets the streak.
func TestRateTrackerRearmHysteresis(t *testing.T) {
	// Each step feeds one 1000-fetch window with the given UE count and
	// asserts the tracker's degraded state afterwards. Alpha=1 makes each
	// window's raw rate the estimate, so scripts read directly as rates.
	type step struct {
		ues      uint64
		degraded bool
	}
	cases := []struct {
		name         string
		clearWindows int
		steps        []step
	}{
		{
			name:         "clears after exactly K clean windows",
			clearWindows: 3,
			steps: []step{
				{100, true},          // 10%: trips
				{0, true}, {0, true}, // streak 1, 2
				{0, false}, // streak 3: re-arms
			},
		},
		{
			name:         "dirty window resets the streak",
			clearWindows: 3,
			steps: []step{
				{100, true},
				{0, true}, {0, true}, // streak 2
				{5, true},            // 0.5%: inside hysteresis band, streak resets
				{0, true}, {0, true}, // fresh streak 1, 2
				{0, false}, // fresh streak 3: re-arms
			},
		},
		{
			name:         "single-window policy still available",
			clearWindows: 1,
			steps: []step{
				{100, true},
				{0, false},
			},
		},
		{
			name:         "re-trip after recovery starts a new cycle",
			clearWindows: 2,
			steps: []step{
				{100, true},
				{0, true}, {0, false}, // recovered
				{100, true},           // trips again
				{0, true}, {0, false}, // recovers again
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewRateTracker(Trip{
				TripRate: 0.01, ClearRate: 0.001, Alpha: 1,
				MinFetches: 100, ClearWindows: tc.clearWindows,
			})
			var fetches, ues uint64
			for i, s := range tc.steps {
				fetches += 1000
				ues += s.ues
				tr.Observe(fetches, ues, uint64(i))
				if tr.Degraded() != s.degraded {
					t.Fatalf("step %d: degraded = %v, want %v", i, tr.Degraded(), s.degraded)
				}
			}
		})
	}
}

// TestRateTrackerRecoveryCounters pins the recovery bookkeeping: each full
// trip → re-arm cycle increments Recoveries and stamps RecoveredAt with
// the clearing observation's stamp.
func TestRateTrackerRecoveryCounters(t *testing.T) {
	tr := NewRateTracker(Trip{TripRate: 0.01, ClearRate: 0.001, Alpha: 1, MinFetches: 100, ClearWindows: 2})
	var fetches, ues uint64
	feed := func(n uint64, stamp uint64) {
		fetches += 1000
		ues += n
		tr.Observe(fetches, ues, stamp)
	}
	feed(100, 1) // trip
	feed(0, 2)
	feed(0, 3) // re-arm at stamp 3
	if tr.Recoveries() != 1 || tr.RecoveredAt() != 3 {
		t.Fatalf("recoveries=%d recoveredAt=%d, want 1 at 3", tr.Recoveries(), tr.RecoveredAt())
	}
	feed(100, 4) // second trip
	if tr.TrippedAt() != 4 {
		t.Fatalf("trippedAt=%d, want 4", tr.TrippedAt())
	}
	feed(0, 5)
	feed(0, 6)
	if tr.Recoveries() != 2 || tr.RecoveredAt() != 6 {
		t.Fatalf("recoveries=%d recoveredAt=%d, want 2 at 6", tr.Recoveries(), tr.RecoveredAt())
	}
}

// TestDefaultTripClearWindows pins the default policy and the zero-value
// back-fill in NewRateTracker.
func TestDefaultTripClearWindows(t *testing.T) {
	if DefaultTrip().ClearWindows != 3 {
		t.Fatalf("DefaultTrip().ClearWindows = %d, want 3", DefaultTrip().ClearWindows)
	}
	// A policy that never specified ClearWindows must behave like K=3, not
	// K=0 (which would re-arm instantly).
	tr := NewRateTracker(Trip{TripRate: 0.01, ClearRate: 0.001, Alpha: 1, MinFetches: 100})
	var fetches, ues uint64
	fetches, ues = 1000, 100
	tr.Observe(fetches, ues, 0)
	for i := 0; i < 2; i++ {
		fetches += 1000
		tr.Observe(fetches, ues, uint64(1+i))
		if !tr.Degraded() {
			t.Fatalf("re-armed after %d clean windows with defaulted ClearWindows", i+1)
		}
	}
	fetches += 1000
	tr.Observe(fetches, ues, 3)
	if tr.Degraded() {
		t.Fatal("did not re-arm after 3 clean windows")
	}
}
