package faults

import "sort"

// Checkpoint support. The stuck-cell population is immutable configuration
// (rebuilt identically from the seed), so a model image is just the
// transient-draw RNG position, the per-line rewrite epochs, and the
// injection counters. The rate tracker is pure policy state and serializes
// field-for-field.

// RewriteState is one line's last-rewrite epoch.
type RewriteState struct {
	Addr uint64
	At   uint64
}

// ModelState is the serialized image of a fault Model.
type ModelState struct {
	RNG       uint64
	LastWrite []RewriteState
	Stats     Stats
}

// State captures the model's mutable state.
func (m *Model) State() ModelState {
	st := ModelState{RNG: m.rng.State(), Stats: m.stats}
	for addr, at := range m.lastWrite {
		st.LastWrite = append(st.LastWrite, RewriteState{Addr: addr, At: at})
	}
	sort.Slice(st.LastWrite, func(i, j int) bool { return st.LastWrite[i].Addr < st.LastWrite[j].Addr })
	return st
}

// SetState restores the model's mutable state in place.
func (m *Model) SetState(st ModelState) {
	m.rng.SetState(st.RNG)
	m.lastWrite = make(map[uint64]uint64, len(st.LastWrite))
	for _, rw := range st.LastWrite {
		m.lastWrite[rw.Addr] = rw.At
	}
	m.stats = st.Stats
}

// TrackerState is the serialized image of a RateTracker.
type TrackerState struct {
	LastFetches uint64
	LastUEs     uint64
	Rate        float64
	Seeded      bool
	Tripped     bool
	TrippedAt   uint64
	Windows     uint64
	ClearStreak int
	Recoveries  uint64
	RecoveredAt uint64
}

// State captures the tracker.
func (t *RateTracker) State() TrackerState {
	return TrackerState{
		LastFetches: t.lastFetches,
		LastUEs:     t.lastUEs,
		Rate:        t.rate,
		Seeded:      t.seeded,
		Tripped:     t.tripped,
		TrippedAt:   t.trippedAt,
		Windows:     t.windows,
		ClearStreak: t.clearStreak,
		Recoveries:  t.recoveries,
		RecoveredAt: t.recoveredAt,
	}
}

// SetState restores the tracker in place.
func (t *RateTracker) SetState(st TrackerState) {
	t.lastFetches = st.LastFetches
	t.lastUEs = st.LastUEs
	t.rate = st.Rate
	t.seeded = st.Seeded
	t.tripped = st.Tripped
	t.trippedAt = st.TrippedAt
	t.windows = st.Windows
	t.clearStreak = st.ClearStreak
	t.recoveries = st.Recoveries
	t.recoveredAt = st.RecoveredAt
}
