// Package faults is the deterministic DRAM fault model of the RAS layer.
// It sits between the storage array and the memory controller's SECDED
// decoder (memctrl consumes it through its FaultModel interface) and
// injects the canonical DRAM failure classes field studies report:
//
//   - transient single-bit upsets per read (particle strikes, marginal
//     sensing) — always corrected by SECDED and healed by a re-read;
//   - transient double-bit upsets per read — uncorrectable, but a bounded
//     re-read usually returns clean data;
//   - persistent stuck-at cells and stuck word pairs — hard faults that no
//     retry or scrub heals, the quarantine policy's target;
//   - latent retention errors — bits that decay in the array and persist
//     until the line is rewritten, the patrol scrubber's reason to exist;
//   - row-correlated bursts — windows during which every read of one DRAM
//     row is corrupted (a weak wordline or neighbouring-row disturbance).
//
// Everything derives from one seed through sim.RNG streams and stateless
// per-line hashes, so a fixed access sequence produces a bit-identical
// fault schedule: experiments stay reproducible and sequential and
// parallel suite runs agree.
package faults

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// lineBits is the number of data bits in one 64B line.
const lineBits = mem.LineSize * 8

// wordBits is the SECDED codeword data width.
const wordBits = 64

// Config describes the injected fault population. The zero value is a
// fault-free DIMM (Enabled reports false).
type Config struct {
	// Seed derives every placement and draw; equal seeds give bit-identical
	// fault schedules for the same access sequence.
	Seed uint64
	// TransientPerRead is the probability that one line read suffers a
	// transient single-bit upset (SECDED-correctable; heals on re-read).
	TransientPerRead float64
	// DoubleBitPerRead is the probability that one line read suffers a
	// transient double-bit upset within one 64-bit word (uncorrectable
	// poison; a re-read usually heals it).
	DoubleBitPerRead float64
	// StuckCells scatters this many persistent stuck-at bits over the
	// Frames-frame array. A stuck cell forces its bit to a fixed value on
	// every read, so it corrupts only content that disagrees with it.
	StuckCells int
	// StuckUEWords places this many word-aligned stuck-at bit *pairs*:
	// lines that read uncorrectably for any content disagreeing with both
	// cells. These never heal — the quarantine policy's target.
	StuckUEWords int
	// Frames is the physical frame count the hard-fault population
	// scatters over (required when StuckCells or StuckUEWords is set).
	Frames int
	// LatentMeanCycles, when non-zero, gives every line an independent
	// retention-error process: one single-bit flip arrives in the array
	// roughly every LatentMeanCycles cycles and persists until the line is
	// rewritten. Unscrubbed lines accumulate flips into multi-bit
	// (uncorrectable) corruption; patrol scrubbing resets the clock.
	LatentMeanCycles uint64
	// BurstMeanCycles, when non-zero, opens a burst window every
	// BurstMeanCycles cycles, lasting BurstCycles, during which every read
	// of one deterministically-chosen DRAM row suffers a double-bit upset
	// (row-correlated errors: weak wordline, disturb noise).
	BurstMeanCycles uint64
	// BurstCycles is the length of each burst window.
	BurstCycles uint64
}

// Enabled reports whether the configuration injects any faults at all.
func (c Config) Enabled() bool {
	return c.TransientPerRead > 0 || c.DoubleBitPerRead > 0 ||
		c.StuckCells > 0 || c.StuckUEWords > 0 ||
		c.LatentMeanCycles > 0 || c.BurstMeanCycles > 0
}

// Stats counts injections by class.
type Stats struct {
	TransientBits uint64 // transient single-bit upsets injected
	DoubleBits    uint64 // transient double-bit upsets injected
	StuckHits     uint64 // reads corrupted by stuck-at cells
	LatentBits    uint64 // latent retention bits applied to reads
	BurstHits     uint64 // reads corrupted inside a burst window
	Rewrites      uint64 // lines rewritten (latent errors cleared)
}

// stuckCell is one hard-failed bit: it always reads as value set.
type stuckCell struct {
	bit int
	set bool
}

// Model is a deterministic fault injector for one DIMM. It satisfies
// memctrl's FaultModel interface structurally (Corrupt + Rewrite).
type Model struct {
	cfg   Config
	rng   *sim.RNG               // per-read transient draws
	stuck map[uint64][]stuckCell // line addr -> hard-failed cells
	// lastWrite records, per line, the cycle of the last rewrite; latent
	// retention flips are the arrivals of a deterministic per-line renewal
	// process in (lastWrite, now]. Lines never written use time zero.
	lastWrite map[uint64]uint64
	stats     Stats
	// boost is a live multiplier on the per-read transient/double-bit
	// rates (1 = nominal). A fault-storm window raises it temporarily; it
	// only amplifies an existing population (a zero base rate stays zero),
	// and it never changes how many RNG draws a read consumes, so toggling
	// it cannot desynchronize the fault stream. It is deliberately not
	// checkpointed: the platform re-derives it from its (checkpointed)
	// storm window at the top of every pass.
	boost float64
}

// NewModel builds the fault population from the configuration. Stuck-cell
// placement consumes a placement stream forked from the seed, so the same
// seed always fails the same cells.
func NewModel(cfg Config) *Model {
	m := &Model{
		cfg:       cfg,
		rng:       sim.NewRNG(cfg.Seed ^ 0x0DD5EED5),
		stuck:     make(map[uint64][]stuckCell),
		lastWrite: make(map[uint64]uint64),
		boost:     1,
	}
	frames := cfg.Frames
	if frames <= 0 {
		frames = 1
	}
	place := sim.NewRNG(cfg.Seed ^ 0x57C4C311)
	for i := 0; i < cfg.StuckCells; i++ {
		addr := m.randLineAddr(place, frames)
		m.stuck[addr] = append(m.stuck[addr], stuckCell{bit: place.Intn(lineBits), set: place.Bool(0.5)})
	}
	for i := 0; i < cfg.StuckUEWords; i++ {
		addr := m.randLineAddr(place, frames)
		w := place.Intn(mem.LineSize * 8 / wordBits)
		b1 := place.Intn(wordBits)
		b2 := (b1 + 1 + place.Intn(wordBits-1)) % wordBits
		m.stuck[addr] = append(m.stuck[addr],
			stuckCell{bit: w*wordBits + b1, set: place.Bool(0.5)},
			stuckCell{bit: w*wordBits + b2, set: place.Bool(0.5)})
	}
	return m
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// SetRateBoost sets the live multiplier on the per-read transient and
// double-bit rates (values below 1 clamp to 1). Fault-storm windows raise
// it and nominal passes reset it.
func (m *Model) SetRateBoost(b float64) {
	if b < 1 {
		b = 1
	}
	m.boost = b
}

// rate applies the live boost to a configured per-read probability,
// capping at certainty.
func (m *Model) rate(p float64) float64 {
	if m.boost <= 1 {
		return p
	}
	if p *= m.boost; p > 1 {
		return 1
	}
	return p
}

func (m *Model) randLineAddr(r *sim.RNG, frames int) uint64 {
	pfn := r.Intn(frames)
	li := r.Intn(mem.LinesPerPage)
	return uint64(mem.PFN(pfn).LineAddr(li))
}

// StuckLines reports the line addresses carrying hard faults, sorted.
// Diagnostics and tests use it; the controller never peeks.
func (m *Model) StuckLines() []uint64 {
	addrs := make([]uint64, 0, len(m.stuck))
	for a := range m.stuck {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// InjectionStats reports cumulative injection accounting (a copy).
func (m *Model) InjectionStats() Stats { return m.stats }

// Corrupt applies the fault population to one line read: line is the 64B
// data as stored, addr its physical line address, now the read cycle.
// The controller decodes the result against the line's stored ECC code.
func (m *Model) Corrupt(addr, now uint64, line []byte) {
	if cells := m.stuck[addr]; len(cells) > 0 {
		hit := false
		for _, c := range cells {
			if forceBit(line, c.bit, c.set) {
				hit = true
			}
		}
		if hit {
			m.stats.StuckHits++
		}
	}
	if m.cfg.LatentMeanCycles > 0 {
		m.applyLatent(addr, now, line)
	}
	if m.cfg.BurstMeanCycles > 0 {
		m.applyBurst(addr, now, line)
	}
	if m.cfg.TransientPerRead > 0 && m.rng.Bool(m.rate(m.cfg.TransientPerRead)) {
		flipBit(line, m.rng.Intn(lineBits))
		m.stats.TransientBits++
	}
	if m.cfg.DoubleBitPerRead > 0 && m.rng.Bool(m.rate(m.cfg.DoubleBitPerRead)) {
		w := m.rng.Intn(lineBits / wordBits)
		b1 := m.rng.Intn(wordBits)
		b2 := (b1 + 1 + m.rng.Intn(wordBits-1)) % wordBits
		flipBit(line, w*wordBits+b1)
		flipBit(line, w*wordBits+b2)
		m.stats.DoubleBits++
	}
}

// Rewrite tells the model that the line at addr was re-encoded and written
// back at cycle now (a demand write or a patrol-scrub repair): accumulated
// latent retention errors are cleared. Hard faults remain, by definition.
func (m *Model) Rewrite(addr, now uint64) {
	if m.cfg.LatentMeanCycles == 0 {
		return
	}
	m.lastWrite[addr] = now
	m.stats.Rewrites++
}

// latentCap bounds how many retention flips one line accumulates; beyond a
// handful the line is thoroughly uncorrectable anyway and unbounded counts
// would only slow pathological configurations down.
const latentCap = 6

// applyLatent flips the retention-error bits that have arrived in the
// line's array cells since its last rewrite. Arrivals are a deterministic
// per-line renewal process: flip k of line L happens at a cycle derived by
// hashing (seed, L, k), spaced LatentMeanCycles apart on average. The same
// (line, rewrite history, now) therefore always yields the same corruption
// — reads do not mutate state, so replaying a schedule is exact.
func (m *Model) applyLatent(addr, now uint64, line []byte) {
	since := m.lastWrite[addr] // zero if never rewritten
	if now <= since {
		return
	}
	mean := m.cfg.LatentMeanCycles
	// Walk the line's arrival sequence. Arrival k lands at the cumulative
	// sum of k hashed inter-arrival gaps in [mean/2, 3*mean/2); the epoch
	// restarts at each rewrite so healed flips stay healed.
	t := since
	for k := 0; k < latentCap; k++ {
		h := mix64(m.cfg.Seed ^ addr ^ uint64(k)*0x9E3779B97F4A7C15 ^ since)
		gap := mean/2 + h%mean
		t += gap
		if t > now {
			return
		}
		flipBit(line, int(mix64(h^0xB17F11B5)%lineBits))
		m.stats.LatentBits++
	}
}

// applyBurst corrupts the read when now falls inside a burst window that
// targets the read's DRAM row. Window w spans
// [w*BurstMeanCycles, w*BurstMeanCycles+BurstCycles) and targets row
// hash(seed, w) of the array; rows are 8KB-aligned address ranges, the
// row-buffer granularity of the dram model's default geometry.
func (m *Model) applyBurst(addr, now uint64, line []byte) {
	w := now / m.cfg.BurstMeanCycles
	if now-w*m.cfg.BurstMeanCycles >= m.cfg.BurstCycles {
		return
	}
	const rowBytes = 8 << 10
	frames := m.cfg.Frames
	if frames <= 0 {
		frames = 1
	}
	rows := uint64(frames) * mem.PageSize / rowBytes
	if rows == 0 {
		rows = 1
	}
	target := mix64(m.cfg.Seed^0xB0857^w) % rows
	if addr/rowBytes != target {
		return
	}
	// Double-bit corruption within one word: uncorrectable for the whole
	// window, healing only when the window closes.
	h := mix64(m.cfg.Seed ^ addr ^ w)
	word := int(h % (lineBits / wordBits))
	b1 := int((h >> 8) % wordBits)
	b2 := (b1 + 1 + int((h>>16)%(wordBits-1))) % wordBits
	flipBit(line, word*wordBits+b1)
	flipBit(line, word*wordBits+b2)
	m.stats.BurstHits++
}

func flipBit(line []byte, bit int) {
	line[bit/8] ^= 1 << (bit % 8)
}

// forceBit sets the bit to v, reporting whether the stored value changed.
func forceBit(line []byte, bit int, v bool) bool {
	mask := byte(1) << (bit % 8)
	old := line[bit/8]&mask != 0
	if old == v {
		return false
	}
	line[bit/8] ^= mask
	return true
}

// mix64 is one splitmix64 finalization step: the stateless hash behind
// latent and burst scheduling.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
