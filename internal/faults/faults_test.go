package faults

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// replay drives a model through a fixed pseudo-random access schedule and
// returns the concatenated corrupted outputs, so two models can be
// compared for bit-identical behaviour.
func replay(m *Model, scheduleSeed uint64, steps int) []byte {
	r := sim.NewRNG(scheduleSeed)
	var out []byte
	line := make([]byte, mem.LineSize)
	for i := 0; i < steps; i++ {
		addr := uint64(mem.PFN(r.Intn(32)).LineAddr(r.Intn(mem.LinesPerPage)))
		now := uint64(i) * 1000
		for j := range line {
			line[j] = byte(i + j)
		}
		m.Corrupt(addr, now, line)
		out = append(out, line...)
		if r.Bool(0.1) {
			m.Rewrite(addr, now)
		}
	}
	return out
}

func TestModelDeterminism(t *testing.T) {
	cfg := Config{
		Seed:             42,
		TransientPerRead: 0.3,
		DoubleBitPerRead: 0.1,
		StuckCells:       16,
		StuckUEWords:     4,
		Frames:           32,
		LatentMeanCycles: 5_000,
		BurstMeanCycles:  20_000,
		BurstCycles:      4_000,
	}
	a := replay(NewModel(cfg), 7, 500)
	b := replay(NewModel(cfg), 7, 500)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed, same schedule: fault model output differs")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c := replay(NewModel(cfg2), 7, 500)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced an identical fault schedule")
	}
}

func TestStuckCellsPersistAcrossRewrites(t *testing.T) {
	cfg := Config{Seed: 9, StuckUEWords: 2, Frames: 4}
	m := NewModel(cfg)
	lines := m.StuckLines()
	if len(lines) == 0 {
		t.Fatal("no stuck lines placed")
	}
	addr := lines[0]
	read := func() []byte {
		l := bytes.Repeat([]byte{0x55}, mem.LineSize) // alternating bits: any stuck cell disagrees half the time
		m.Corrupt(addr, 100, l)
		return l
	}
	first := read()
	if bytes.Equal(first, bytes.Repeat([]byte{0x55}, mem.LineSize)) {
		// Both stuck values may coincide with the stored pattern; probe the
		// complement, where every previously-agreeing cell must disagree.
		l := bytes.Repeat([]byte{0xAA}, mem.LineSize)
		m.Corrupt(addr, 100, l)
		if bytes.Equal(l, bytes.Repeat([]byte{0xAA}, mem.LineSize)) {
			t.Fatal("stuck cells corrupted neither 0x55 nor 0xAA pattern")
		}
		first = l
	}
	// Persistent: the same read yields the same corruption, and a rewrite
	// does not clear hard faults.
	m.Rewrite(addr, 200)
	second := read()
	third := read()
	if !bytes.Equal(second, third) {
		t.Fatal("stuck-cell corruption is not stable across reads")
	}
}

func TestLatentErrorsAccumulateAndRewriteHeals(t *testing.T) {
	cfg := Config{Seed: 5, LatentMeanCycles: 1_000, Frames: 4}
	m := NewModel(cfg)
	addr := uint64(mem.PFN(1).LineAddr(3))
	flips := func(now uint64) int {
		l := make([]byte, mem.LineSize)
		m.Corrupt(addr, now, l)
		n := 0
		for _, b := range l {
			for ; b != 0; b &= b - 1 {
				n++
			}
		}
		return n
	}
	if n := flips(100); n != 0 {
		t.Fatalf("latent flips before the first mean interval: %d", n)
	}
	early := flips(2_000)
	late := flips(100_000)
	if late < early || late == 0 {
		t.Fatalf("latent errors do not accumulate: early=%d late=%d", early, late)
	}
	if late > latentCap {
		t.Fatalf("latent flips exceed cap: %d", late)
	}
	// Identical reads are identical: no read-side state.
	if a, b := flips(50_000), flips(50_000); a != b {
		t.Fatalf("latent corruption not deterministic: %d vs %d", a, b)
	}
	// A rewrite resets the retention clock.
	m.Rewrite(addr, 100_000)
	if n := flips(100_100); n != 0 {
		t.Fatalf("rewrite did not clear latent errors: %d flips", n)
	}
	if n := flips(400_000); n == 0 {
		t.Fatal("no new latent errors accumulate after a rewrite")
	}
}

func TestBurstWindowTargetsOneRow(t *testing.T) {
	cfg := Config{Seed: 11, BurstMeanCycles: 100_000, BurstCycles: 10_000, Frames: 32}
	m := NewModel(cfg)
	const rowBytes = 8 << 10
	rows := 32 * mem.PageSize / rowBytes
	inWindow := uint64(5_000)   // inside window 0
	outWindow := uint64(50_000) // between windows
	corrupted := -1
	for row := 0; row < rows; row++ {
		l := make([]byte, mem.LineSize)
		m.Corrupt(uint64(row*rowBytes), inWindow, l)
		if !bytes.Equal(l, make([]byte, mem.LineSize)) {
			if corrupted >= 0 {
				t.Fatalf("burst hit rows %d and %d; want exactly one row", corrupted, row)
			}
			corrupted = row
		}
	}
	if corrupted < 0 {
		t.Fatal("burst window corrupted no row")
	}
	l := make([]byte, mem.LineSize)
	m.Corrupt(uint64(corrupted*rowBytes), outWindow, l)
	if !bytes.Equal(l, make([]byte, mem.LineSize)) {
		t.Fatal("burst corruption outside the window")
	}
}

func TestRateTrackerTripAndHysteresis(t *testing.T) {
	tr := NewRateTracker(Trip{TripRate: 0.01, ClearRate: 0.001, Alpha: 1, MinFetches: 100})
	// Healthy windows: no trip.
	fetches, ues := uint64(0), uint64(0)
	for i := 0; i < 5; i++ {
		fetches += 1000
		if tr.Observe(fetches, ues, uint64(i)) {
			t.Fatal("tripped with zero UEs")
		}
	}
	// A window below MinFetches must not update anything.
	if tr.Observe(fetches+10, ues+10, 99) {
		t.Fatal("tripped on a sub-minimum window")
	}
	// UE storm: trips exactly once, with the right stamp.
	fetches += 1000
	ues += 100
	if !tr.Observe(fetches, ues, 7) {
		t.Fatal("did not trip at 10% UE rate")
	}
	if !tr.Degraded() || tr.TrippedAt() != 7 {
		t.Fatalf("degraded=%v trippedAt=%d", tr.Degraded(), tr.TrippedAt())
	}
	fetches += 1000
	ues += 100
	if tr.Observe(fetches, ues, 8) {
		t.Fatal("re-tripped while already degraded")
	}
	// Rate between clear and trip: hysteresis holds the degraded state.
	fetches += 1000
	ues += 5 // 0.5%: below trip, above clear
	tr.Observe(fetches, ues, 9)
	if !tr.Degraded() {
		t.Fatal("cleared inside the hysteresis band")
	}
	// Clean windows push the rate below ClearRate: re-arms.
	for i := 0; i < 10; i++ {
		fetches += 1000
		tr.Observe(fetches, ues, uint64(10+i))
	}
	if tr.Degraded() {
		t.Fatal("did not re-arm after sustained clean windows")
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for _, c := range []Config{
		{TransientPerRead: 0.1},
		{DoubleBitPerRead: 0.1},
		{StuckCells: 1},
		{StuckUEWords: 1},
		{LatentMeanCycles: 1},
		{BurstMeanCycles: 1},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v reports disabled", c)
		}
	}
}
