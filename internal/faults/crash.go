package faults

import "sort"

// Host-crash injection. A crash is not a DRAM fault — it kills the whole
// engine mid-convergence — but it belongs to the same deterministic fault
// vocabulary: the schedule is fixed up front (drawn by the workload
// generator or configured by an experiment), so two runs with the same
// plan crash at exactly the same convergence passes.

// CrashConfig schedules host crashes for one run. The zero value injects
// nothing.
type CrashConfig struct {
	// Passes lists the 0-based convergence passes at whose boundary the
	// host dies. Duplicates model back-to-back crashes within one re-arm
	// window: the host comes back up, recovers, and dies again at the same
	// boundary before taking another checkpoint.
	Passes []int
}

// Enabled reports whether the configuration schedules any crash.
func (c CrashConfig) Enabled() bool { return len(c.Passes) > 0 }

// CrashPlan is the consumable schedule built from a CrashConfig: a sorted
// queue of crash passes, popped as the convergence loop reaches them.
type CrashPlan struct {
	queue []int
	fired int
}

// NewCrashPlan builds a plan from the configuration. Negative passes are
// dropped; the rest are sorted ascending so replayed boundaries (which
// re-run earlier passes after a restore) never re-fire a consumed crash.
func NewCrashPlan(cfg CrashConfig) *CrashPlan {
	p := &CrashPlan{}
	for _, pass := range cfg.Passes {
		if pass >= 0 {
			p.queue = append(p.queue, pass)
		}
	}
	sort.Ints(p.queue)
	return p
}

// FireAt reports whether the host crashes at the given pass boundary,
// consuming the crash if so. Each scheduled crash fires at most once; a
// pass listed twice fires twice (the second on the replayed boundary).
func (p *CrashPlan) FireAt(pass int) bool {
	if len(p.queue) == 0 || p.queue[0] != pass {
		return false
	}
	p.queue = p.queue[1:]
	p.fired++
	return true
}

// Add schedules one more crash at the given pass boundary, keeping the
// queue sorted so replayed boundaries never re-fire a consumed crash. It is
// how a live event stream injects a crash into an already-armed plan;
// negative passes are ignored.
func (p *CrashPlan) Add(pass int) {
	if pass < 0 {
		return
	}
	i := sort.SearchInts(p.queue, pass)
	p.queue = append(p.queue, 0)
	copy(p.queue[i+1:], p.queue[i:])
	p.queue[i] = pass
}

// Remaining reports how many scheduled crashes have not fired yet.
func (p *CrashPlan) Remaining() int { return len(p.queue) }

// Fired reports how many crashes have fired.
func (p *CrashPlan) Fired() int { return p.fired }
