// Command pageforge runs the paper's experiments and prints their tables.
//
// Usage:
//
//	pageforge list
//	pageforge run [-exp all|fig7|fig8|fig9|fig10|fig11|table4|table5|latency|satori|timeline|ras|verify|pressure|crash|efficiency|stream]
//	              [-apps img_dnn,silo,...] [-fast] [-seed N] [-fault-rate r1,r2,...] [-verify-n N] [-overcommit r1,r2,...]
//	              [-crash-passes p1,p2,...] [-ckpt-every n1,n2,...]
//	              [-json] [-trace file] [-metrics file] [-series file]
//	              [-cpuprofile file] [-memprofile file] [-pprof addr]
//	pageforge explain [-mode KSM|PageForge] [-app name] [-fast] [-seed N] [-pfn N] [-json]
//	pageforge report -series file [-ledger file] [-track substr]
//	pageforge bench [-out BENCH_suite.json] [-fast] [-parallel N] [-seed N]
//
// Each experiment prints the same rows/series the corresponding table or
// figure of the paper reports, with the paper's headline numbers noted for
// comparison; -json replaces the text tables with one machine-readable
// document on stdout. -trace writes a Chrome trace_event file of the runs'
// simulation events (open in Perfetto or chrome://tracing); -metrics dumps
// every run's full counter/histogram snapshot; -series dumps every run's
// per-pass time-series samples (counter deltas and gauges at each
// convergence-pass and measurement-interval boundary). A failing experiment
// is reported on stderr and the remaining selections still run; the exit
// status is then non-zero. An output-artifact path that cannot be created
// fails fast with exit status 3, before any simulation runs.
//
// `pageforge explain` runs one configuration with the merge-lifecycle
// provenance ledger attached and replays a frame's recorded history;
// `pageforge report` renders convergence-curve and scan-budget attribution
// tables from previously written -series and ledger artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	pageforgesim "repro"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		run(os.Args[2:])
	case "explain":
		explain(os.Args[2:])
	case "report":
		report(os.Args[2:])
	case "bench":
		bench(os.Args[2:])
	case "perfcheck":
		perfcheck(os.Args[2:])
	case "sweep":
		sweep(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pageforge list
  pageforge run [-exp all|fig7|fig8|fig9|fig10|fig11|table4|table5|latency|satori|timeline|ras|verify|pressure|crash|efficiency|stream] [-apps a,b] [-fast] [-seed N] [-parallel N] [-quiet] [-fault-rate r1,r2,...] [-verify-n N] [-overcommit r1,r2,...] [-crash-passes p1,p2,...] [-ckpt-every n1,n2,...]
                [-json] [-trace file] [-metrics file] [-series file] [-cpuprofile file] [-memprofile file] [-pprof addr]
  pageforge explain [-mode KSM|PageForge] [-app name] [-fast] [-seed N] [-pfn N] [-json]
  pageforge report -series file [-ledger file] [-track substr]
  pageforge bench [-out BENCH_suite.json] [-fast] [-parallel N] [-seed N]
  pageforge perfcheck [-baseline BENCH_suite.json] [-tol 0.10]
  pageforge sweep [-app name] [-pages N] [-seconds S]`)
}

// startProfiling arms the optional profiling hooks: a CPU profile written
// until stop, a heap profile written at stop, and a live net/http/pprof
// server. The returned stop must run before exit for the files to be
// complete.
func startProfiling(cpuFile, memFile, addr string) (stop func(), err error) {
	var cpuF *os.File
	if cpuFile != "" {
		cpuF, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	if addr != "" {
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof server on http://%s/debug/pprof/\n", addr)
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}

func list() {
	fmt.Println("Experiments (paper artifact -> harness):")
	for _, e := range [][2]string{
		{"fig7", "Figure 7: memory allocation without/with page merging (avg -48%)"},
		{"fig8", "Figure 8: jhash vs ECC-based hash key comparison outcomes"},
		{"table4", "Table 4: KSM configuration characterization"},
		{"fig9", "Figure 9: mean sojourn latency (Baseline/KSM/PageForge)"},
		{"fig10", "Figure 10: 95th percentile latency"},
		{"fig11", "Figure 11: memory bandwidth in the dedup-intensive phase"},
		{"table5", "Table 5: PageForge timing, area, and power"},
		{"latency", "Demand-access latency distribution (mean/p50/p95/p99/max cycles)"},
		{"satori", "Extension: short-lived sharing capture vs scan aggressiveness (Satori, §7.2)"},
		{"timeline", "Extension: savings convergence ramp, KSM vs PageForge"},
		{"ras", "Extension: DRAM fault rate vs merge coverage, scrub/retry overhead, degradation"},
		{"verify", "Model-based verification: randomized scenarios, invariant checker, KSM≡PageForge differential"},
		{"pressure", "Robustness: overcommit storm vs graceful OOM, ballooning, backpressure, degradation ladder"},
		{"crash", "Robustness: host crash x checkpoint interval vs verified recovery, replay cost, bit-identity"},
		{"efficiency", "Observability: scan-budget attribution (ledger causes), convergence speed, zero-perturbation proof"},
		{"stream", "Runtime: tick-driven streaming runs — config-scheduled ≡ live-injected event equivalence per world shape"},
	} {
		fmt.Printf("  %-7s %s\n", e[0], e[1])
	}
	fmt.Println("\nApplications (Table 3):")
	for _, p := range pageforgesim.Profiles() {
		fmt.Printf("  %-9s QPS=%-5.0f service=%.2fms  util=%.2f\n",
			p.Name, p.QPS, p.MeanServiceCycles/2e6, p.Utilization())
	}
	cfg := pageforgesim.DefaultConfig()
	fmt.Printf("\nMachine (Table 2): %d cores @2GHz, %d VMs, sleep=%gms, pages_to_scan=%d\n",
		cfg.Cores, cfg.VMs, cfg.SleepMillis, cfg.PagesToScan)
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment to run")
	apps := fs.String("apps", "", "comma-separated application subset")
	fast := fs.Bool("fast", false, "scaled-down quick mode")
	seed := fs.Uint64("seed", 1, "simulation seed")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation runs (results are bit-identical at any setting)")
	quiet := fs.Bool("quiet", false, "suppress per-run progress lines on stderr")
	faultRates := fs.String("fault-rate", "", "comma-separated UE-per-read rates for the ras experiment (default sweep when empty)")
	verifyN := fs.Int("verify-n", experiments.DefaultVerifyScenarios, "randomized scenario count for the verify experiment")
	overcommit := fs.String("overcommit", "", "comma-separated demand/capacity ratios for the pressure experiment (default sweep when empty)")
	crashPassesFlag := fs.String("crash-passes", "", "comma-separated convergence passes to crash at for the crash experiment (default sweep when empty)")
	ckptEveryFlag := fs.String("ckpt-every", "", "comma-separated checkpoint intervals for the crash experiment (default sweep when empty)")
	jsonOut := fs.Bool("json", false, "emit one machine-readable JSON document on stdout instead of text tables")
	traceFile := fs.String("trace", "", "write a Chrome trace_event JSON file of the simulation runs (Perfetto-loadable)")
	metricsFile := fs.String("metrics", "", "write every run's full metrics snapshot (counters, gauges, histograms) as JSON")
	seriesFile := fs.String("series", "", "write every run's per-pass time-series samples (counter deltas, gauges) as JSON")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.Parse(args)

	checkArtifactPaths(*traceFile, *metricsFile, *seriesFile)
	stopProf, err := startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	parseFloats := func(flagName, s string) []float64 {
		var out []float64
		if s == "" {
			return out
		}
		for _, tok := range strings.Split(s, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad %s %q: %v\n", flagName, tok, err)
				os.Exit(2)
			}
			out = append(out, v)
		}
		return out
	}
	rates := parseFloats("-fault-rate", *faultRates)
	ratios := parseFloats("-overcommit", *overcommit)
	parseInts := func(flagName, s string) []int {
		var out []int
		if s == "" {
			return out
		}
		for _, tok := range strings.Split(s, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad %s %q: %v\n", flagName, tok, err)
				os.Exit(2)
			}
			out = append(out, v)
		}
		return out
	}
	crashPasses := parseInts("-crash-passes", *crashPassesFlag)
	ckptEvery := parseInts("-ckpt-every", *ckptEveryFlag)

	var suite *experiments.Suite
	if *fast {
		suite = pageforgesim.NewFastSuite()
	} else {
		suite = pageforgesim.NewSuite()
	}
	suite.Cfg.Seed = *seed
	if *apps != "" {
		var sel []pageforgesim.Profile
		for _, name := range strings.Split(*apps, ",") {
			found := false
			for _, p := range suite.Apps {
				if p.Name == name {
					sel = append(sel, p)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown application %q\n", name)
				os.Exit(2)
			}
		}
		suite.Apps = sel
	}

	// A failing experiment must not silently take the rest down: the error
	// is reported, the remaining selections still run, and the process
	// exits non-zero at the end.
	exitCode := 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		exitCode = 1
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }

	// -trace arms event recording and -series per-pass sampling on every
	// platform run; -json redirects experiment results into one document
	// instead of printing tables.
	if *traceFile != "" {
		suite.Cfg.Trace = pageforgesim.NewTracer(pageforgesim.DefaultTraceCapacity)
	}
	if *seriesFile != "" {
		suite.Cfg.Series = pageforgesim.NewSeries(pageforgesim.DefaultSeriesCapacity)
	}
	var doc *experiments.Doc
	if *jsonOut {
		doc = experiments.NewDoc(suite)
	}
	emit := func(name string, r any) {
		if doc != nil {
			doc.Add(name, r)
		} else {
			fmt.Println(r)
		}
	}

	// Fan the selected experiments' (mode × app) simulation matrix out
	// across the worker pool up front; the experiments then render from
	// the warm cache. Progress and the duration summary go to stderr so
	// stdout stays pure tables.
	suite.Parallelism = *parallel
	var progress *experiments.ProgressReporter
	if !*quiet {
		progress = experiments.NewProgressReporter(os.Stderr)
		suite.Reporter = progress
	}
	modeSet := map[platform.Mode]bool{}
	if want("fig7") {
		modeSet[platform.KSM] = true
	}
	if want("table4") {
		modeSet[platform.Baseline] = true
		modeSet[platform.KSM] = true
	}
	if want("fig9") || want("fig10") || want("fig11") || want("latency") {
		for _, m := range experiments.AllModes() {
			modeSet[m] = true
		}
	}
	if want("table5") {
		modeSet[platform.PageForge] = true
	}
	if len(modeSet) > 0 {
		var modes []platform.Mode
		for _, m := range experiments.AllModes() {
			if modeSet[m] {
				modes = append(modes, m)
			}
		}
		if err := suite.RunAll(modes...); err != nil {
			fail(err)
		}
	}

	if want("fig7") {
		if r, err := pageforgesim.Figure7(suite); err != nil {
			fail(err)
		} else {
			emit("fig7", r)
		}
	}
	if want("fig8") {
		if r, err := pageforgesim.Figure8(suite); err != nil {
			fail(err)
		} else {
			emit("fig8", r)
		}
	}
	if want("table4") {
		if r, err := pageforgesim.Table4(suite); err != nil {
			fail(err)
		} else {
			emit("table4", r)
		}
	}
	if want("fig9") || want("fig10") {
		if r, err := pageforgesim.LatencyExperiment(suite); err != nil {
			fail(err)
		} else if doc != nil {
			if want("fig9") {
				doc.Add("fig9", r)
			}
			if want("fig10") {
				doc.Add("fig10", r)
			}
		} else {
			if want("fig9") {
				fmt.Println(r.Figure9())
			}
			if want("fig10") {
				fmt.Println(r.Figure10())
			}
		}
	}
	if want("fig11") {
		if r, err := pageforgesim.Figure11(suite); err != nil {
			fail(err)
		} else {
			emit("fig11", r)
		}
	}
	if want("table5") {
		if r, err := pageforgesim.Table5(suite); err != nil {
			fail(err)
		} else {
			emit("table5", r)
		}
	}
	if want("latency") {
		if r, err := pageforgesim.DemandLatency(suite); err != nil {
			fail(err)
		} else {
			emit("latency", r)
		}
	}
	if want("satori") {
		if r, err := pageforgesim.Satori(suite); err != nil {
			fail(err)
		} else {
			emit("satori", r)
		}
	}
	if want("timeline") {
		for _, app := range suite.Apps {
			if r, err := pageforgesim.Timeline(suite, app, 60); err != nil {
				fail(err)
			} else {
				emit("timeline_"+app.Name, r)
			}
		}
	}
	if want("ras") {
		if r, err := pageforgesim.RASExperiment(suite, rates); err != nil {
			fail(err)
		} else {
			emit("ras", r)
		}
	}
	if want("verify") {
		if r, err := pageforgesim.VerifyExperiment(suite, *verifyN); err != nil {
			fail(err)
		} else {
			emit("verify", r)
		}
	}
	if want("pressure") {
		if r, err := pageforgesim.PressureExperiment(suite, ratios); err != nil {
			fail(err)
		} else {
			emit("pressure", r)
		}
	}
	if want("crash") {
		if r, err := pageforgesim.CrashExperiment(suite, crashPasses, ckptEvery); err != nil {
			fail(err)
		} else {
			emit("crash", r)
		}
	}
	if want("efficiency") {
		if r, err := pageforgesim.EfficiencyExperiment(suite); err != nil {
			fail(err)
		} else {
			emit("efficiency", r)
		}
	}
	if want("stream") {
		if r, err := pageforgesim.StreamExperiment(suite); err != nil {
			fail(err)
		} else {
			emit("stream", r)
		}
	}
	if progress != nil && len(modeSet) > 0 {
		fmt.Fprintln(os.Stderr, "\n"+progress.Summary())
	}

	if doc != nil {
		if err := doc.Encode(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *traceFile != "" {
		if err := writeTrace(suite.Cfg.Trace, *traceFile); err != nil {
			fail(err)
		}
	}
	if *metricsFile != "" {
		if err := writeFileJSON(*metricsFile, func(f *os.File) error {
			return pageforgesim.NewMetricsDoc(suite).Encode(f)
		}); err != nil {
			fail(err)
		}
	}
	if *seriesFile != "" {
		if err := writeSeries(suite.Cfg.Series, *seriesFile); err != nil {
			fail(err)
		}
	}
	stopProf()
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// writeTrace serializes the tracer to a Chrome trace_event file and notes
// the volume (and any ring-buffer drops) on stderr.
func writeTrace(tr *pageforgesim.Tracer, path string) error {
	err := writeFileJSON(path, func(f *os.File) error { return tr.WriteJSON(f) })
	if err == nil {
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s (dropped %d)\n", tr.Len(), path, tr.Dropped())
	}
	return err
}

// writeFileJSON creates path and streams JSON into it via write.
func writeFileJSON(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkArtifactPaths fails fast — exit status 3, before any simulation work
// — when an output artifact path cannot be created: discovering an
// unwritable -trace/-metrics/-series destination after a long run would
// throw the whole run away. The probe opens without truncating so an
// existing artifact survives an unrelated later failure.
func checkArtifactPaths(paths ...string) {
	for _, p := range paths {
		if p == "" {
			continue
		}
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: output artifact path is not writable: %v\n", err)
			os.Exit(3)
		}
		f.Close()
	}
}

// writeSeries serializes the per-pass series artifact and notes its volume
// on stderr.
func writeSeries(s *pageforgesim.Series, path string) error {
	err := writeFileJSON(path, func(f *os.File) error { return s.WriteJSON(f) })
	if err == nil {
		fmt.Fprintf(os.Stderr, "series: %d tracks -> %s\n", len(s.TrackNames()), path)
	}
	return err
}

// explain runs one configuration with the merge-lifecycle provenance ledger
// attached and replays what it recorded: the attribution summary, the most
// eventful frames, and — with -pfn — one frame's full history. -json emits
// the whole ledger as an artifact `pageforge report -ledger` can read.
func explain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	modeName := fs.String("mode", "PageForge", "engine configuration (KSM or PageForge)")
	appName := fs.String("app", "img_dnn", "application profile")
	fast := fs.Bool("fast", true, "scaled-down quick mode")
	seed := fs.Uint64("seed", 1, "simulation seed")
	pfn := fs.Int64("pfn", -1, "physical frame whose history to replay (-1: summary only)")
	jsonOut := fs.Bool("json", false, "emit the full ledger document as JSON on stdout")
	fs.Parse(args)

	var mode platform.Mode
	switch strings.ToLower(*modeName) {
	case "ksm":
		mode = platform.KSM
	case "pageforge":
		mode = platform.PageForge
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want KSM or PageForge)\n", *modeName)
		os.Exit(2)
	}
	var suite *experiments.Suite
	if *fast {
		suite = pageforgesim.NewFastSuite()
	} else {
		suite = pageforgesim.NewSuite()
	}
	var app *pageforgesim.Profile
	for i := range suite.Apps {
		if suite.Apps[i].Name == *appName {
			app = &suite.Apps[i]
		}
	}
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown application %q\n", *appName)
		os.Exit(2)
	}

	cfg := suite.Cfg
	cfg.Seed = *seed
	ledger := pageforgesim.NewLedger(0)
	cfg.Ledger = ledger
	res, err := pageforgesim.Run(mode, *app, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := ledger.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	at := ledger.Attribution()
	fmt.Printf("explain: %s/%s seed=%d — %d ledger events (dropped %d), %d passes, %.1f%% memory saved\n",
		mode, app.Name, *seed, at.Events, at.Dropped, res.ConvergedPasses, res.Footprint.Savings()*100)
	fmt.Println("\nlifecycle transitions:")
	for _, k := range sortedKeys(at.Kinds) {
		fmt.Printf("  %-14s %d\n", k, at.Kinds[k])
	}
	if len(at.Causes) > 0 {
		fmt.Println("\nwasted scan work by cause:")
		for _, c := range sortedKeys(at.Causes) {
			fmt.Printf("  %-22s %d\n", c, at.Causes[c])
		}
	}

	if *pfn < 0 {
		// No frame selected: point at the busiest ones so the user knows
		// which -pfn values have a story to tell.
		counts := map[uint64]int{}
		for _, e := range ledger.Events() {
			if e.PFN != pageforgesim.LedgerNoPFN {
				counts[e.PFN]++
			}
		}
		type fc struct {
			pfn uint64
			n   int
		}
		var top []fc
		for p, n := range counts {
			top = append(top, fc{p, n})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].n != top[j].n {
				return top[i].n > top[j].n
			}
			return top[i].pfn < top[j].pfn
		})
		if len(top) > 10 {
			top = top[:10]
		}
		fmt.Println("\nmost eventful frames (rerun with -pfn N for a full history):")
		for _, t := range top {
			fmt.Printf("  frame %-8d %d events\n", t.pfn, t.n)
		}
		return
	}

	hist := ledger.FrameHistory(uint64(*pfn))
	fmt.Printf("\nframe %d history (%d events):\n", *pfn, len(hist))
	if len(hist) == 0 {
		fmt.Println("  (no recorded events touch this frame)")
	}
	for _, e := range hist {
		fmt.Println("  " + formatLedgerEvent(e))
	}
}

// sortedKeys returns a string-keyed map's keys in sorted order.
func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatLedgerEvent renders one provenance event as a human-readable line.
func formatLedgerEvent(e obs.LedgerEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-6d pass=%-3d %-12s", e.Seq, e.Pass, e.Kind)
	if e.VM >= 0 {
		fmt.Fprintf(&b, " vm%d/gfn%d", e.VM, e.GFN)
	}
	if e.PFN != obs.LedgerNoPFN {
		fmt.Fprintf(&b, " pfn=%d", e.PFN)
	}
	switch e.Kind {
	case obs.LKMerged, obs.LKCoWBroken:
		fmt.Fprintf(&b, " -> frame %d", e.Arg)
	case obs.LKShed:
		fmt.Fprintf(&b, " (%d candidates deferred)", e.Arg)
	case obs.LKRestored:
		fmt.Fprintf(&b, " (replay resumes at pass %d)", e.Arg)
	}
	if e.Cause != obs.CauseNone {
		fmt.Fprintf(&b, " [%s]", e.Cause)
	}
	return b.String()
}

// report renders previously written observability artifacts: per-pass
// convergence-curve tables from a -series file, and — with -ledger — the
// scan-budget attribution recorded by `pageforge explain -json`. It runs no
// simulation; everything comes from the artifacts.
func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	seriesPath := fs.String("series", "", "series artifact written by `pageforge run -series` (required)")
	ledgerPath := fs.String("ledger", "", "ledger artifact written by `pageforge explain -json`")
	trackFilter := fs.String("track", "", "only render tracks whose name contains this substring")
	fs.Parse(args)
	if *seriesPath == "" {
		fmt.Fprintln(os.Stderr, "report: -series file is required")
		os.Exit(2)
	}

	f, err := os.Open(*seriesPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	sf, err := obs.ReadSeriesJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}

	rendered := 0
	for _, tr := range sf.Tracks {
		if *trackFilter != "" && !strings.Contains(tr.Name, *trackFilter) {
			continue
		}
		rendered++
		reportTrack(tr)
	}
	if rendered == 0 {
		fmt.Fprintf(os.Stderr, "report: no tracks matched (artifact has %d)\n", len(sf.Tracks))
		os.Exit(1)
	}

	if *ledgerPath != "" {
		lf, err := os.Open(*ledgerPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		led, err := obs.ReadLedgerJSON(lf)
		lf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		reportLedger(led)
	}
}

// reportTrack renders one track's convergence curve: per-window scan volume,
// merge/unmerge deltas, the live frame count, and the merge rate — the
// coverage-vs-cost view of one run.
func reportTrack(tr obs.SeriesFileTrack) {
	fmt.Printf("track %s — %d points (dropped %d)\n", tr.Name, len(tr.Points), tr.Dropped)
	fmt.Printf("  %-12s %10s %10s %8s %8s %9s %12s\n",
		"window", "Mcycles", "scanned", "merged", "unmerged", "frames", "merges/Mcyc")
	var scanned, merged uint64
	for _, p := range tr.Points {
		scanned += p.Counters["ksm/pages_scanned"]
		merged += p.Counters["vm/merges"]
		fmt.Printf("  %-12s %10.1f %10d %8d %8d %9.0f %12.2f\n",
			fmt.Sprintf("%s %d", p.Phase, p.Index),
			float64(p.WindowCycles)/1e6,
			p.Counters["ksm/pages_scanned"],
			p.Counters["vm/merges"],
			p.Counters["vm/unmerges"],
			p.Gauges["platform/frames_allocated"],
			p.Rates["vm/merges"])
	}
	eff := 0.0
	if scanned > 0 {
		eff = float64(merged) / float64(scanned) * 1000
	}
	fmt.Printf("  total: %d scanned, %d merged (%.1f merges per 1k scanned)\n\n", scanned, merged, eff)
}

// reportLedger renders a ledger artifact's scan-budget attribution: the
// lifecycle-transition totals, the wasted-work cause totals, and the
// per-pass waste breakdown.
func reportLedger(led *obs.LedgerFile) {
	at := led.Attribution
	fmt.Printf("ledger — %d events (dropped %d)\n", at.Events, at.Dropped)
	fmt.Println("  lifecycle transitions:")
	for _, k := range sortedKeys(at.Kinds) {
		fmt.Printf("    %-22s %d\n", k, at.Kinds[k])
	}
	if len(at.Causes) > 0 {
		fmt.Println("  wasted scan work by cause:")
		for _, c := range sortedKeys(at.Causes) {
			fmt.Printf("    %-22s %d\n", c, at.Causes[c])
		}
	}
	// Per-pass waste: which passes burned budget, and on what.
	type waste struct {
		churn, unstable, fault, shed uint64
	}
	perPass := map[int]*waste{}
	var passes []int
	for _, e := range led.Events {
		if e.Cause == "" {
			continue
		}
		w := perPass[e.Pass]
		if w == nil {
			w = &waste{}
			perPass[e.Pass] = w
			passes = append(passes, e.Pass)
		}
		switch e.Cause {
		case "content_churn":
			w.churn++
		case "checksum_instability":
			w.unstable++
		case "fault_retry":
			w.fault++
		case "backpressure_shed":
			w.shed++
		}
	}
	if len(passes) == 0 {
		return
	}
	sort.Ints(passes)
	fmt.Printf("  %-6s %8s %10s %8s %8s\n", "pass", "churn", "unstable", "fault", "shed")
	for _, p := range passes {
		w := perPass[p]
		fmt.Printf("  %-6d %8d %10d %8d %8d\n", p, w.churn, w.unstable, w.fault, w.shed)
	}
}

// bench runs the full (mode × app) simulation matrix and writes a
// machine-readable benchmark artifact: per-run wall-clock times plus each
// run's headline metrics, with enough environment context (go version,
// parallelism) to compare artifacts across commits.
func bench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_suite.json", "artifact file")
	fast := fs.Bool("fast", true, "scaled-down suite (matches CI; -fast=false runs paper-sized images)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation runs")
	fs.Parse(args)

	var suite *experiments.Suite
	if *fast {
		suite = pageforgesim.NewFastSuite()
	} else {
		suite = pageforgesim.NewSuite()
	}
	suite.Cfg.Seed = *seed
	suite.Parallelism = *parallel
	progress := experiments.NewProgressReporter(os.Stderr)
	suite.Reporter = progress

	start := time.Now()
	if err := suite.RunAll(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	// Scan-throughput benchmark: legacy (byte compare, allocating hash,
	// sequential single shard) versus optimized implementation on identical
	// work. The speedup ratio is machine-portable, which is what perfcheck
	// gates on.
	scanpass, err := experiments.RunScanPassBench(experiments.DefaultScanPassConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Crash-recovery benchmark: wall-clock cost of one audited
	// checkpoint-crash-restore-replay point, including its bit-identity
	// cross-check against the uninterrupted run.
	crashRec, err := experiments.RunCrashBench(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Streaming-runtime benchmark: tick throughput of the stepped Runtime
	// against batch Run on the same world, plus their bit-identity.
	streamRec, err := experiments.RunStreamBench(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	type keyMetrics struct {
		AvgDemandLatency float64 `json:"avg_demand_latency_cycles"`
		DemandLatP95     float64 `json:"demand_latency_p95_cycles"`
		DemandLatP99     float64 `json:"demand_latency_p99_cycles"`
		L3MissRate       float64 `json:"l3_miss_rate"`
		TotalGBps        float64 `json:"total_gbps"`
		SavedFrac        float64 `json:"memory_savings_frac"`
	}
	artifact := struct {
		Schema      string                        `json:"schema"`
		GoVersion   string                        `json:"go_version"`
		Fast        bool                          `json:"fast"`
		Seed        uint64                        `json:"seed"`
		Parallelism int                           `json:"parallelism"`
		ElapsedSecs float64                       `json:"elapsed_seconds"`
		ScanPass    experiments.ScanPassResult    `json:"scanpass"`
		CrashRec    experiments.CrashBenchResult  `json:"crash_recovery"`
		Stream      experiments.StreamBenchResult `json:"stream"`
		Runs        []experiments.RunRecord       `json:"runs"`
		KeyMetrics  map[string]keyMetrics         `json:"key_metrics"`
	}{
		Schema:      experiments.DocSchema,
		GoVersion:   runtime.Version(),
		Fast:        *fast,
		Seed:        *seed,
		Parallelism: *parallel,
		ElapsedSecs: elapsed.Seconds(),
		ScanPass:    scanpass,
		CrashRec:    crashRec,
		Stream:      streamRec,
		Runs:        progress.Records(),
		KeyMetrics:  make(map[string]keyMetrics),
	}
	for key, r := range suite.Results() {
		artifact.KeyMetrics[key] = keyMetrics{
			AvgDemandLatency: r.AvgDemandLatency,
			DemandLatP95:     r.DemandLatP95,
			DemandLatP99:     r.DemandLatP99,
			L3MissRate:       r.L3MissRate,
			TotalGBps:        r.TotalGBps,
			SavedFrac:        r.Footprint.Savings(),
		}
	}
	if err := writeFileJSON(*out, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(artifact)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: %d runs in %.2fs, scanpass speedup %.2fx -> %s\n",
		len(artifact.Runs), elapsed.Seconds(), scanpass.Speedup, *out)
}

// perfcheck re-runs the scan-throughput benchmark and gates on regression
// against the committed baseline artifact. Absolute throughput is machine
// dependent, so the gate compares the legacy-vs-optimized speedup RATIO:
// it must stay within the tolerance band of the baseline's ratio and never
// drop below the 2x floor the optimization work committed to.
func perfcheck(args []string) {
	fs := flag.NewFlagSet("perfcheck", flag.ExitOnError)
	baselinePath := fs.String("baseline", "BENCH_suite.json", "committed benchmark artifact")
	tol := fs.Float64("tol", 0.10, "allowed fractional speedup regression vs baseline")
	fs.Parse(args)

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(1)
	}
	var baseline struct {
		ScanPass experiments.ScanPassResult `json:"scanpass"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(1)
	}
	if baseline.ScanPass.Speedup == 0 {
		fmt.Fprintf(os.Stderr, "perfcheck: %s has no scanpass section — regenerate it with `pageforge bench`\n", *baselinePath)
		os.Exit(1)
	}

	cur, err := experiments.RunScanPassBench(experiments.DefaultScanPassConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(1)
	}
	floor := baseline.ScanPass.Speedup * (1 - *tol)
	fmt.Fprintf(os.Stderr, "perfcheck: speedup %.2fx (baseline %.2fx, floor %.2fx; legacy %.0f optimized %.0f pages/s)\n",
		cur.Speedup, baseline.ScanPass.Speedup, floor,
		cur.LegacyPagesPerSec, cur.OptimizedPagesPerSec)
	if cur.Speedup < floor {
		fmt.Fprintf(os.Stderr, "perfcheck: FAIL — scan-throughput speedup regressed more than %.0f%% vs baseline\n", *tol*100)
		os.Exit(1)
	}
	if cur.Speedup < 2 {
		fmt.Fprintln(os.Stderr, "perfcheck: FAIL — speedup below the committed 2x floor")
		os.Exit(1)
	}

	// Provenance-overhead gate: the merge-lifecycle ledger must stay nearly
	// free on the scan hot path. This comparison is absolute and fresh —
	// ledger-on vs ledger-off on this machine, right now — so it needs no
	// committed baseline.
	ov, err := experiments.RunLedgerOverheadBench(experiments.DefaultScanPassConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perfcheck: ledger overhead %.1f%% (off %.0f, on %.0f pages/s, %d events)\n",
		ov.Overhead*100, ov.OffPagesPerSec, ov.OnPagesPerSec, ov.Events)
	if ov.Overhead > *tol {
		fmt.Fprintf(os.Stderr, "perfcheck: FAIL — provenance ledger costs more than %.0f%% of scan throughput\n", *tol*100)
		os.Exit(1)
	}

	// Streaming-runtime gate: a stepped Runtime must produce a bit-identical
	// Result to batch Run (hard fail) and cost essentially nothing over it.
	// Both runs do identical work on this machine right now, so the overhead
	// band is a fixed constant, generous only for scheduler jitter — the
	// scanpass ratio gate above remains the real throughput protector.
	const streamTol = 0.25
	st, err := experiments.RunStreamBench(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfcheck:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perfcheck: stream overhead %.1f%% (%d ticks, %.0f ticks/s streamed, %.0f batch, identical=%v)\n",
		st.Overhead*100, st.Ticks, st.TicksPerSec, st.BatchTicksPerSec, st.Identical)
	if !st.Identical {
		fmt.Fprintln(os.Stderr, "perfcheck: FAIL — streamed Runtime result diverged from batch Run")
		os.Exit(1)
	}
	if st.Overhead > streamTol {
		fmt.Fprintf(os.Stderr, "perfcheck: FAIL — streaming runtime costs more than %.0f%% over batch Run\n", streamTol*100)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "perfcheck: OK")
}

// sweep runs the dedup-aggressiveness study: the sleep_millisecs x
// pages_to_scan grid the paper's §2.1 describes as KSM's tuning knobs,
// reporting the savings reached within a fixed simulated time against the
// kthread's core consumption.
func sweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	appName := fs.String("app", "img_dnn", "application profile")
	pages := fs.Int("pages", 400, "per-VM image pages (scaled)")
	budget := fs.Float64("seconds", 1.0, "simulated scanning time per point")
	fs.Parse(args)

	p := pageforgesim.ProfileByName(*appName)
	if p == nil {
		fmt.Fprintf(os.Stderr, "unknown application %q\n", *appName)
		os.Exit(2)
	}
	app := *p
	app.PagesPerVM = *pages

	fmt.Printf("dedup aggressiveness sweep: %s, 10 VMs x %d pages, %.1fs simulated per point\n\n",
		app.Name, app.PagesPerVM, *budget)
	fmt.Printf("%12s %14s %12s %14s %12s\n",
		"sleep_ms", "pages_to_scan", "savings", "kthread_core%", "full_scans")

	for _, sleepMS := range []float64{2.5, 5, 10, 20} {
		for _, pts := range []int{100, 400, 1600} {
			img, err := pageforgesim.BuildImage(app, 10, 10*app.PagesPerVM*2, 31)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			s := pageforgesim.NewKSMScanner(img.HV)
			intervalCycles := uint64(sleepMS * 2e6)
			intervals := uint64(*budget*2e9) / intervalCycles
			var busy uint64
			for k := uint64(0); k < intervals; k++ {
				before := s.Cycles.Total()
				res := s.ScanBatch(pts)
				busy += s.Cycles.Total() - before
				if res.PassEnded {
					img.ChurnVolatile()
				}
			}
			f := img.MeasureFootprint()
			corePct := float64(busy) / float64(intervals*intervalCycles) * 100
			fmt.Printf("%12.1f %14d %11.1f%% %13.1f%% %12d\n",
				sleepMS, pts, f.Savings()*100, corePct, s.Alg.Stats.FullScans)
		}
	}
	fmt.Println("\nthe paper's operating point (5ms, 400) converges within the budget at ~6-8%")
	fmt.Println("of one core; PageForge reaches the same savings with the kthread column ~0.")
}
