// Quickstart: deduplicate the memory of two VMs with the software KSM
// engine and watch the physical footprint shrink.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	pageforgesim "repro"
)

const pageSize = 4096

func main() {
	// A host with 256 frames and two 16-page VMs.
	hv := pageforgesim.NewHypervisor(256 * pageSize)
	vmA := hv.NewVM(16 * pageSize)
	vmB := hv.NewVM(16 * pageSize)

	// Both VMs load the same "shared library" content into pages 0-7 (the
	// cross-VM duplication page merging exploits), and unique data into
	// pages 8-15. Everything is madvised mergeable, as KVM guests are.
	for _, v := range []*pageforgesim.VM{vmA, vmB} {
		v.Madvise(0, 16, true)
		for g := 0; g < 8; g++ {
			lib := bytes.Repeat([]byte{byte(0x40 + g)}, pageSize)
			if _, err := v.Write(pageforgesim.GFN(g), 0, lib); err != nil {
				log.Fatal(err)
			}
		}
		for g := 8; g < 16; g++ {
			private := bytes.Repeat([]byte{byte(v.ID*16 + g)}, pageSize)
			if _, err := v.Write(pageforgesim.GFN(g), 0, private); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("before merging: %d frames for %d guest pages\n",
		hv.Phys.AllocatedFrames(), 32)

	// Run the KSM scanner to steady state. Pass 1 records hash keys; pass 2
	// populates the unstable tree and merges duplicates.
	scanner := pageforgesim.NewKSMScanner(hv)
	passes := scanner.RunToSteadyState(10)

	shared, sharing := scanner.Alg.SharingStats()
	fmt.Printf("after %d passes:  %d frames (%d shared frames back %d guest pages)\n",
		passes, hv.Phys.AllocatedFrames(), shared, sharing)
	fmt.Printf("memory saved:   %.0f%%\n",
		(1-float64(hv.Phys.AllocatedFrames())/32)*100)

	// Copy-on-write: a guest write to a merged page breaks the sharing
	// without disturbing the other VM.
	if _, err := vmA.Write(0, 100, []byte("private change")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 14)
	if err := vmB.Read(0, 100, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a CoW write by VM A, VM B still reads %q at the same offset\n", buf)
	fmt.Printf("frames now: %d (one page unshared)\n", hv.Phys.AllocatedFrames())
}
