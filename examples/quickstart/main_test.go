package main

import (
	"testing"

	"repro/internal/extest"
)

func TestQuickstartRuns(t *testing.T) { extest.Smoke(t, "before merging:") }
