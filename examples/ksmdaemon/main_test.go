package main

import (
	"testing"

	"repro/internal/extest"
)

func TestKsmdaemonRuns(t *testing.T) { extest.Smoke(t, "deployment:") }
