// Ksmdaemon runs the software KSM engine over a realistic 10-VM TailBench
// deployment, pass by pass, printing /sys/kernel/mm/ksm-style counters and
// the Figure 7 footprint classification as merging converges while
// volatile pages churn underneath it.
//
//	go run ./examples/ksmdaemon
package main

import (
	"fmt"
	"log"

	pageforgesim "repro"
)

func main() {
	app := *pageforgesim.ProfileByName("img_dnn")
	app.PagesPerVM = 800 // scaled for a quick demo

	img, err := pageforgesim.BuildImage(app, 10, 10*app.PagesPerVM*2, 7)
	if err != nil {
		log.Fatal(err)
	}
	scanner := pageforgesim.NewKSMScanner(img.HV)

	fmt.Printf("deployment: 10 VMs x %d pages of %q (%.0f%% cross-VM duplicates, %.0f%% zero)\n\n",
		app.PagesPerVM, app.Name, app.DupFrac*100, app.ZeroFrac*100)
	fmt.Printf("%4s %12s %12s %12s %10s %10s %9s\n",
		"pass", "pages_shared", "pages_sharing", "frames", "merges", "hash_miss", "savings")

	for pass := 1; pass <= 8; pass++ {
		pages := scanner.Alg.MergeablePages()
		for i := 0; i < pages; i++ {
			if _, _, ok := scanner.ScanOne(); !ok {
				log.Fatal("scan order empty")
			}
		}
		// The applications keep writing between passes.
		if err := img.ChurnVolatile(); err != nil {
			log.Fatal(err)
		}

		shared, sharing := scanner.Alg.SharingStats()
		st := scanner.Alg.Stats
		f := img.MeasureFootprint()
		fmt.Printf("%4d %12d %12d %12d %10d %10d %8.1f%%\n",
			pass, shared, sharing, f.FramesAllocated,
			st.StableMerges+st.UnstableMerges, st.HashMismatches, f.Savings()*100)
	}

	f := img.MeasureFootprint()
	fmt.Printf("\nfinal footprint (Figure 7 taxonomy):\n")
	fmt.Printf("  unmergeable:        %5d pages (%.1f%%)\n", f.Unmergeable,
		100*float64(f.Unmergeable)/float64(f.TotalGuestPages))
	fmt.Printf("  mergeable zero:     %5d pages -> %d frame(s)\n", f.MergeableZero, f.ZeroFrames)
	fmt.Printf("  mergeable non-zero: %5d pages -> %d frames\n", f.MergeableNonZero, f.NonZeroShared)
	fmt.Printf("  total savings:      %.1f%% (paper: 48%% average)\n", f.Savings()*100)

	br := scanner.Cycles
	fmt.Printf("\nkthread cycle breakdown: %.0f%% compare, %.0f%% hash, %.0f%% bookkeeping (Table 4: 52/15/33)\n",
		100*float64(br.Compare)/float64(br.Total()),
		100*float64(br.Hash)/float64(br.Total()),
		100*float64(br.Other)/float64(br.Total()))
}
