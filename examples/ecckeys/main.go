// Ecckeys demonstrates Section 3.3 of the paper: repurposing the memory
// controller's SECDED ECC codes as page hash keys — their error-correction
// day job, the 75% key-generation footprint saving over KSM's jhash, and
// the false-positive behaviour Figure 8 measures.
//
//	go run ./examples/ecckeys
package main

import (
	"fmt"

	pageforgesim "repro"
	"repro/internal/ecc"
	"repro/internal/hash"
)

func main() {
	// --- 1. The ECC engine's day job: correct single-bit DRAM errors.
	word := uint64(0xDEADBEEFCAFEBABE)
	code := ecc.Encode(word)
	corrupted := ecc.FlipBit(word, 17)
	fixed, status := ecc.Decode(corrupted, code)
	fmt.Printf("SECDED(72,64): word %#x, code %#02x\n", word, code)
	fmt.Printf("  single-bit flip -> decode: %v, recovered=%v\n", status, fixed == word)
	_, status = ecc.Decode(ecc.FlipBit(corrupted, 42), code)
	fmt.Printf("  double-bit flip -> decode: %v (detected, not miscorrected)\n\n", status)

	// --- 2. Page hash keys: 4 minikeys from fixed-offset lines vs jhash
	// over the first 1KB.
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i * 131)
	}
	offsets := pageforgesim.DefaultKeyOffsets
	eccKey := pageforgesim.ECCPageKey(page, offsets)
	jKey := hash.PageHash(page)
	fmt.Printf("page keys: ECC=%#08x (reads 256B)   jhash=%#08x (reads 1024B)\n", eccKey, jKey)
	fmt.Printf("key-generation footprint reduction: 75%% (the paper's headline)\n\n")

	// --- 3. Sensitivity: where a write lands decides which key notices.
	report := func(name string, off int) {
		mod := make([]byte, 4096)
		copy(mod, page)
		mod[off] ^= 0xFF
		eccChanged := pageforgesim.ECCPageKey(mod, offsets) != eccKey
		jChanged := hash.PageHash(mod) != jKey
		fmt.Printf("  write at byte %4d (%-22s): ECC key changed=%-5v jhash changed=%v\n",
			off, name, eccChanged, jChanged)
	}
	sampled := offsets.LineIndex(0) * 64
	fmt.Println("single-byte writes:")
	report("sampled line, in 1KB", sampled)
	report("unsampled line, in 1KB", sampled+64)
	report("sampled line, past 1KB", offsets.LineIndex(2)*64)
	report("unsampled, past 1KB", 3000)
	fmt.Println("\nmisses are the hash-key false positives of Figure 8; they cost only an")
	fmt.Println("extra exhaustive comparison, never correctness — pages are always fully")
	fmt.Println("compared before merging.")

	// --- 4. Collision quality: distinct random pages virtually never share
	// an ECC key.
	r := newRand(42)
	buf := make([]byte, 4096)
	seen := map[uint32]bool{}
	collisions := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		r.fill(buf)
		k := pageforgesim.ECCPageKey(buf, offsets)
		if seen[k] {
			collisions++
		}
		seen[k] = true
	}
	fmt.Printf("\n%d random pages -> %d ECC-key collisions (32-bit birthday bound ~%d)\n",
		trials, collisions, trials*trials/(2<<32))
}

// newRand is a tiny xorshift generator to keep the example stdlib-only and
// deterministic.
type rnd struct{ s uint64 }

func newRand(seed uint64) *rnd { return &rnd{s: seed*0x9E3779B97F4A7C15 + 1} }

func (r *rnd) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rnd) fill(b []byte) {
	for i := 0; i+8 <= len(b); i += 8 {
		v := r.next()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}
