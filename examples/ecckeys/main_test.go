package main

import (
	"testing"

	"repro/internal/extest"
)

func TestEcckeysRuns(t *testing.T) { extest.Smoke(t, "SECDED(72,64):") }
