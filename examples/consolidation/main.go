// Consolidation walks a small cloud-operator story end to end, combining
// the systems around same-page merging that the paper's related work
// (§7.2) describes: sharing-aware placement (Memory Buddies), dedup-aware
// gang migration (Deshpande et al.), page merging itself, and Difference
// Engine-style sub-page savings.
//
//  1. Eight VMs of two applications arrive at a pool; Bloom-filter
//     fingerprints estimate pairwise sharing without touching page data.
//
//  2. The packer colocates same-application VMs (their library pages are
//     identical builds).
//
//  3. Each gang migrates to its host, every distinct page crossing the
//     wire once — the destination arrives pre-deduplicated.
//
//  4. The Difference Engine squeezes the remainder: similar pages become
//     patches, cold unique pages get compressed.
//
//     go run ./examples/consolidation
package main

import (
	"bytes"
	"fmt"
	"log"

	pageforgesim "repro"
)

const pagesPerVM = 250

func main() {
	// --- A staging pool with 4 VMs of app A and 4 of app B, interleaved.
	appA := *pageforgesim.ProfileByName("img_dnn")
	appA.PagesPerVM = pagesPerVM
	appB := *pageforgesim.ProfileByName("silo")
	appB.PagesPerVM = pagesPerVM

	imgA, err := pageforgesim.BuildImage(appA, 4, 4*pagesPerVM*2, 100)
	if err != nil {
		log.Fatal(err)
	}
	imgB, err := pageforgesim.BuildImage(appB, 4, 4*pagesPerVM*2, 200)
	if err != nil {
		log.Fatal(err)
	}
	// Half of each image's unique pages are per-VM *variants* of common
	// contents — invisible to page-granularity merging, food for the
	// Difference Engine.
	if err := imgA.AddSimilarity(0.5); err != nil {
		log.Fatal(err)
	}
	if err := imgB.AddSimilarity(0.5); err != nil {
		log.Fatal(err)
	}
	pool := pageforgesim.NewHypervisor(8 * pagesPerVM * 3 * 4096)
	var kinds []string
	copyIn := func(src *pageforgesim.Hypervisor, id int, kind string) {
		v := pool.NewVM(pagesPerVM * 4096)
		v.Madvise(0, pagesPerVM, true)
		for g := pageforgesim.GFN(0); g < pagesPerVM; g++ {
			if pfn, ok := src.VM(id).Resolve(g); ok {
				if _, err := v.Write(g, 0, src.Phys.Page(pfn)); err != nil {
					log.Fatal(err)
				}
			}
		}
		kinds = append(kinds, kind)
	}
	for i := 0; i < 4; i++ { // interleaved arrival order
		copyIn(imgA.HV, i, "A")
		copyIn(imgB.HV, i, "B")
	}

	// --- 1+2: fingerprint and pack.
	var fps []*pageforgesim.Fingerprint
	for i := 0; i < 8; i++ {
		fps = append(fps, pageforgesim.FingerprintVM(pool, i, 1<<15, 4))
	}
	fmt.Printf("estimated sharing, VM0(A) vs VM2(A): %.0f distinct pages\n",
		pageforgesim.EstimateSharedDistinct(fps[0], fps[2]))
	fmt.Printf("estimated sharing, VM0(A) vs VM1(B): %.0f distinct pages\n",
		pageforgesim.EstimateSharedDistinct(fps[0], fps[1]))
	hosts := pageforgesim.Colocate(fps, 4)
	fmt.Printf("\nplacement over 2 hosts:\n")
	for h, ids := range hosts {
		fmt.Printf("  host %d:", h)
		for _, id := range ids {
			fmt.Printf(" vm%d(%s)", id, kinds[id])
		}
		fmt.Println()
	}

	// --- 3: gang-migrate each host's VMs.
	for h, ids := range hosts {
		plan := pageforgesim.PlanGangMigration(pool, ids)
		var wire bytes.Buffer
		if err := plan.Stream(&wire); err != nil {
			log.Fatal(err)
		}
		dest := pageforgesim.NewHypervisor(uint64(len(ids)) * pagesPerVM * 3 * 4096)
		vms, err := pageforgesim.ReceiveMigration(&wire, dest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nhost %d migration: %d pages -> %d on the wire (%.0f%% saved), %d VMs arrive pre-deduplicated (%d frames)\n",
			h, plan.TotalPages, plan.DistinctPages, plan.Reduction()*100,
			len(vms), dest.Phys.AllocatedFrames())

		// --- 4: Difference Engine squeezes the remainder on the host.
		de := pageforgesim.NewDiffEngine(dest)
		de.Sweep(func(pageforgesim.PageID) bool { return true }) // all cold at arrival
		s := de.MeasureSavings()
		fmt.Printf("  after sub-page sharing + compression: %.1f effective pages for %d guest pages (%.0f%% total savings)\n",
			s.EffectivePages, s.GuestPages, s.Fraction*100)
	}
}
