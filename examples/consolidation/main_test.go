package main

import (
	"testing"

	"repro/internal/extest"
)

func TestConsolidationRuns(t *testing.T) { extest.Smoke(t, "estimated sharing,") }
