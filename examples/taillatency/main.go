// Taillatency reproduces the paper's headline result on one application:
// the three configurations' sojourn latencies (Figures 9 and 10). KSM's
// software scanning steals core time and pollutes the shared cache, while
// PageForge does the same work in the memory controller for a few percent
// of overhead.
//
//	go run ./examples/taillatency [app]
package main

import (
	"fmt"
	"log"
	"os"

	pageforgesim "repro"
)

func main() {
	name := "silo"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	p := pageforgesim.ProfileByName(name)
	if p == nil {
		log.Fatalf("unknown application %q (try img_dnn, masstree, moses, silo, sphinx)", name)
	}
	app := *p
	app.PagesPerVM = 600 // scaled for a quick demo

	cfg := pageforgesim.DefaultConfig()
	cfg.ConvergePasses = 12
	cfg.MeasureIntervals = 16

	fmt.Printf("%s: %d VMs, %.0f QPS each, mean service %.2fms, utilization %.2f\n\n",
		app.Name, cfg.VMs, app.QPS, app.MeanServiceCycles/2e6, app.Utilization())

	results := map[pageforgesim.Mode]*pageforgesim.Result{}
	for _, mode := range []pageforgesim.Mode{pageforgesim.Baseline, pageforgesim.KSM, pageforgesim.PageForge} {
		r, err := pageforgesim.Run(mode, app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		results[mode] = r
		fmt.Printf("%-10s savings=%4.1f%%  L3 miss=%4.1f%%  core-steal/interval=%6.0f cycles  dedup BW=%.2f GB/s\n",
			mode, r.Footprint.Savings()*100, r.L3MissRate*100, r.BurstMean, r.SteadyDedupGBps)
	}

	base := results[pageforgesim.Baseline]
	lb := pageforgesim.Latency(app, base, base, cfg, 1200, 3)
	fmt.Printf("\n%-10s %15s %15s\n", "config", "mean sojourn", "95th percentile")
	fmt.Printf("%-10s %12.2fms %12.2fms\n", "Baseline", lb.Mean/2e6, lb.P95/2e6)
	for _, mode := range []pageforgesim.Mode{pageforgesim.KSM, pageforgesim.PageForge} {
		l := pageforgesim.Latency(app, base, results[mode], cfg, 1200, 3)
		fmt.Printf("%-10s %12.2fms %12.2fms   (%.2fx / %.2fx of Baseline)\n",
			mode, l.Mean/2e6, l.P95/2e6, l.Mean/lb.Mean, l.P95/lb.P95)
	}
	fmt.Println("\npaper averages: KSM 1.68x mean / 2.36x tail; PageForge 1.10x / 1.11x")
}
