package main

import (
	"testing"

	"repro/internal/extest"
)

func TestTaillatencyRuns(t *testing.T) { extest.Smoke(t, "silo: 10 VMs") }
