// Esxdedup demonstrates §4.2 of the paper — PageForge is not tied to KSM.
// It runs a second same-page merging algorithm (VMware ESX-style
// hash-indexed hints) on the same deployment twice: once in software, once
// with its exhaustive comparisons executed by the PageForge hardware in
// *list mode*, where every Scan Table entry's Less and More pointers name
// the next entry.
//
//	go run ./examples/esxdedup
package main

import (
	"fmt"
	"log"

	pageforgesim "repro"
)

func main() {
	app := *pageforgesim.ProfileByName("masstree")
	app.PagesPerVM = 600

	build := func() *pageforgesim.Image {
		img, err := pageforgesim.BuildImage(app, 10, 10*app.PagesPerVM*2, 21)
		if err != nil {
			log.Fatal(err)
		}
		return img
	}

	// --- Software ESX-style merging.
	imgSW := build()
	sw := pageforgesim.NewESXSoftware(imgSW.HV)
	passesSW := sw.RunToSteadyState(10)
	fSW := imgSW.MeasureFootprint()

	// --- The same algorithm, comparisons on the PageForge engine.
	imgHW := build()
	engine := pageforgesim.NewEngine(imgHW.HV)
	hw := pageforgesim.NewESXOnPageForge(imgHW.HV, engine)
	passesHW := hw.RunToSteadyState(10)
	fHW := imgHW.MeasureFootprint()

	fmt.Printf("ESX-style hash-indexed merging over 10 VMs x %d pages (%s image)\n\n", app.PagesPerVM, app.Name)
	fmt.Printf("%-22s %12s %12s\n", "", "software", "PageForge")
	fmt.Printf("%-22s %12d %12d\n", "passes to converge", passesSW, passesHW)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "memory savings", fSW.Savings()*100, fHW.Savings()*100)
	fmt.Printf("%-22s %12d %12d\n", "hint promotions", sw.Stats.HintPromotions, hw.Stats.HintPromotions)
	fmt.Printf("%-22s %12d %12d\n", "shared-frame merges", sw.Stats.SharedMerges, hw.Stats.SharedMerges)
	fmt.Printf("%-22s %12d %12d\n", "comparisons", sw.Stats.Comparisons, hw.Stats.Comparisons)
	if fSW.FramesAllocated != fHW.FramesAllocated {
		log.Fatalf("BUG: software (%d frames) and hardware (%d frames) diverged",
			fSW.FramesAllocated, fHW.FramesAllocated)
	}
	fmt.Printf("\nidentical final layouts: %d frames for %d guest pages\n",
		fHW.FramesAllocated, fHW.TotalGuestPages)
	fmt.Printf("hardware lines fetched: %d (the module re-reads pages; no caches, no core cycles)\n",
		engine.LinesFetched)

	// Contrast with KSM on the same image: hash-indexed merging needs far
	// fewer comparisons because buckets replace tree descents, but pays a
	// full-page hash per scanned page.
	imgKSM := build()
	ks := pageforgesim.NewKSMScanner(imgKSM.HV)
	ks.RunToSteadyState(12)
	fKSM := imgKSM.MeasureFootprint()
	fmt.Printf("\nKSM on the same image: %.1f%% savings, %d tree comparisons, 1KB hashed/page\n",
		fKSM.Savings()*100, ks.Alg.Stable.Comparisons()+ks.Alg.Unstable.Comparisons())
	fmt.Printf("ESX hashed %d KB total (4KB/page) but compared only %d times\n",
		sw.Stats.BytesHashed/1024, sw.Stats.Comparisons)
}
