package main

import (
	"testing"

	"repro/internal/extest"
)

func TestEsxdedupRuns(t *testing.T) { extest.Smoke(t, "ESX-style hash-indexed merging") }
