// Scantable drives the raw PageForge hardware interface (Table 1 of the
// paper): the OS fills the Scan Table with a candidate page and a small
// content-ordered tree of pages, triggers the module, and polls the PFE
// status bits — reproducing the Figure 2 walkthrough.
//
//	go run ./examples/scantable
package main

import (
	"bytes"
	"fmt"
	"log"

	pageforgesim "repro"
)

const pageSize = 4096

func main() {
	hv := pageforgesim.NewHypervisor(64 * pageSize)
	engine := pageforgesim.NewEngine(hv)

	// Allocate six pages with ordered contents (Figure 2's Pages 0..5) by
	// backing one VM and writing values through it.
	v := hv.NewVM(8 * pageSize)
	page := func(val byte) pageforgesim.PFN {
		g := pageforgesim.GFN(val % 8)
		if _, err := v.Write(g, 0, bytes.Repeat([]byte{val}, pageSize)); err != nil {
			log.Fatal(err)
		}
		pfn, _ := v.Resolve(g)
		return pfn
	}
	p0, p1, p2 := page(0), page(1), page(2)
	p3, p4, p5 := page(3), page(4), page(5)

	// The candidate (gfn 6) has the same contents as Page 4.
	if _, err := v.Write(6, 0, bytes.Repeat([]byte{4}, pageSize)); err != nil {
		log.Fatal(err)
	}
	candPFN, _ := v.Resolve(6)

	// Fill the Scan Table exactly like Figure 2(b): entry 0 is the tree
	// root (Page 3); Less/More point at the entries holding each child.
	//
	//        P3(e0)
	//       /      \
	//    P1(e1)    P5(e2)
	//    /   \     /
	//  P0(e3) P2(e4) P4(e5)
	engine.InsertPPN(0, p3, 1, 2)
	engine.InsertPPN(1, p1, 3, 4)
	engine.InsertPPN(2, p5, 5, pageforgesim.InvalidIndex)
	engine.InsertPPN(3, p0, pageforgesim.InvalidIndex, pageforgesim.InvalidIndex)
	engine.InsertPPN(4, p2, pageforgesim.InvalidIndex, pageforgesim.InvalidIndex)
	engine.InsertPPN(5, p4, pageforgesim.InvalidIndex, pageforgesim.InvalidIndex)

	// insert_PFE: candidate PPN, Last Refill set (single batch), Ptr at
	// entry 0. Then trigger the hardware.
	engine.InsertPFE(candPFN, true, 0)
	engine.Trigger(0)

	// The OS polls get_PFE_info every 12,000 cycles (Table 5).
	now := uint64(0)
	for {
		now += 12000
		info := engine.GetPFEInfo(now)
		fmt.Printf("poll @%6d cycles: %v\n", now, info)
		if info.Scanned {
			if !info.Duplicate {
				log.Fatal("expected a duplicate at entry 5")
			}
			fmt.Printf("\nduplicate found at Scan Table entry %d (Page 4), after %d page comparisons\n",
				info.Ptr, engine.PagesCompared)
			fmt.Printf("ECC hash key generated in the background: %#08x (ready=%v)\n",
				info.Hash, info.HashReady)
			want := pageforgesim.ECCPageKey(hv.Phys.Page(candPFN), engine.Offsets())
			fmt.Printf("software-reference ECC key:               %#08x (match=%v)\n",
				want, want == info.Hash)
			break
		}
	}

	// The traversal compared only the path P3 -> P5 -> P4, not all six.
	fmt.Printf("\nhardware batch time: %.0f cycles (paper's Table 5 reports ~7,486 at full scale)\n",
		engine.BatchCycles.Mean())
}
