package main

import (
	"testing"

	"repro/internal/extest"
)

func TestScantableRuns(t *testing.T) { extest.Smoke(t, "poll @") }
