package pageforgesim_test

import (
	"bytes"
	"fmt"

	pageforgesim "repro"
)

// ExampleNewKSMScanner merges the duplicate pages of two VMs with the
// software KSM engine.
func ExampleNewKSMScanner() {
	hv := pageforgesim.NewHypervisor(64 * 4096)
	content := bytes.Repeat([]byte{7}, 4096)
	for i := 0; i < 2; i++ {
		v := hv.NewVM(2 * 4096)
		v.Madvise(0, 2, true)
		v.Write(0, 0, content)                                  // duplicate across VMs
		v.Write(1, 0, bytes.Repeat([]byte{byte(10 + i)}, 4096)) // unique
	}
	scanner := pageforgesim.NewKSMScanner(hv)
	scanner.RunToSteadyState(10)
	fmt.Println("frames for 4 guest pages:", hv.Phys.AllocatedFrames())
	// Output: frames for 4 guest pages: 3
}

// ExampleEngine drives the PageForge hardware through the paper's Table 1
// interface: one Scan Table batch comparing a candidate against one page.
func ExampleEngine() {
	hv := pageforgesim.NewHypervisor(64 * 4096)
	v := hv.NewVM(2 * 4096)
	content := bytes.Repeat([]byte{42}, 4096)
	v.Write(0, 0, content)
	v.Write(1, 0, content)
	cand, _ := v.Resolve(0)
	other, _ := v.Resolve(1)

	engine := pageforgesim.NewEngine(hv)
	engine.InsertPPN(0, other, pageforgesim.InvalidIndex, pageforgesim.InvalidIndex)
	engine.InsertPFE(cand, true, 0) // Last Refill set: finish the ECC key
	engine.Trigger(0)

	info := engine.GetPFEInfo(engine.DoneAt())
	fmt.Println("scanned:", info.Scanned, "duplicate:", info.Duplicate, "hash ready:", info.HashReady)
	// Output: scanned: true duplicate: true hash ready: true
}

// ExampleECCPageKey shows the ECC-based hash key next to its cost: four
// sampled lines (256B) instead of KSM's 1KB jhash input.
func ExampleECCPageKey() {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	key := pageforgesim.ECCPageKey(page, pageforgesim.DefaultKeyOffsets)
	same := key == pageforgesim.ECCPageKey(page, pageforgesim.DefaultKeyOffsets)
	fmt.Printf("32-bit key from 256B of page data; deterministic: %v\n", same)
	// Output: 32-bit key from 256B of page data; deterministic: true
}

// ExamplePlanGangMigration deduplicates a two-VM gang on the wire.
func ExamplePlanGangMigration() {
	hv := pageforgesim.NewHypervisor(64 * 4096)
	lib := bytes.Repeat([]byte{9}, 4096)
	for i := 0; i < 2; i++ {
		v := hv.NewVM(2 * 4096)
		v.Madvise(0, 2, true)
		v.Write(0, 0, lib) // shared library page
		v.Write(1, 0, bytes.Repeat([]byte{byte(i + 1)}, 4096))
	}
	plan := pageforgesim.PlanGangMigration(hv, []int{0, 1})
	fmt.Printf("%d pages -> %d on the wire\n", plan.TotalPages, plan.DistinctPages)
	// Output: 4 pages -> 3 on the wire
}
